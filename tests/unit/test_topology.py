"""Unit tests for the topology engine and fixed topologies."""

import pytest

from repro.errors import TopologyError
from repro.net.battery import Battery, LinearDrain
from repro.net.geometry import Arena, Point
from repro.net.manual import fixed_topology
from repro.net.node import Node
from repro.net.radio import BatteryCoupledRange, FixedRange, HeterogeneousRange
from repro.net.topology import Topology


def make_line_topology():
    """Three nodes in a row, ranges that see only adjacent nodes."""
    arena = Arena(100, 100)
    nodes = [
        Node(0, Point(10, 50), FixedRange(15.0)),
        Node(1, Point(25, 50), FixedRange(15.0)),
        Node(2, Point(40, 50), FixedRange(15.0)),
    ]
    topology = Topology(nodes, arena)
    topology.recompute()
    return topology


class TestTopologyBasics:
    def test_requires_nodes(self):
        with pytest.raises(TopologyError):
            Topology([], Arena(10, 10))

    def test_requires_contiguous_ids(self):
        nodes = [Node(1, Point(0, 0), FixedRange(1.0))]
        with pytest.raises(TopologyError):
            Topology(nodes, Arena(10, 10))

    def test_line_adjacency(self):
        topology = make_line_topology()
        assert topology.out_neighbors(0) == {1}
        assert topology.out_neighbors(1) == {0, 2}
        assert topology.out_neighbors(2) == {1}

    def test_edge_count_and_edges(self):
        topology = make_line_topology()
        assert topology.edge_count == 4
        assert list(topology.edges()) == [(0, 1), (1, 0), (1, 2), (2, 1)]

    def test_has_edge(self):
        topology = make_line_topology()
        assert topology.has_edge(0, 1)
        assert not topology.has_edge(0, 2)

    def test_in_neighbors(self):
        topology = make_line_topology()
        assert topology.in_neighbors(1) == {0, 2}

    def test_unknown_node_raises(self):
        topology = make_line_topology()
        with pytest.raises(TopologyError):
            topology.out_neighbors(99)
        with pytest.raises(TopologyError):
            topology.node(99)

    def test_adjacency_copy_is_independent(self):
        topology = make_line_topology()
        copy = topology.adjacency_copy()
        copy[0].add(2)
        assert not topology.has_edge(0, 2)

    def test_strong_connectivity(self):
        assert make_line_topology().is_strongly_connected()


class TestDirectedLinks:
    def test_asymmetric_ranges_give_directed_edges(self):
        arena = Arena(100, 100)
        nodes = [
            Node(0, Point(10, 10), HeterogeneousRange(30.0)),
            Node(1, Point(35, 10), HeterogeneousRange(10.0)),
        ]
        topology = Topology(nodes, arena)
        topology.recompute()
        assert topology.has_edge(0, 1)
        assert not topology.has_edge(1, 0)
        assert not topology.is_strongly_connected()

    def test_degradation_removes_edges(self):
        arena = Arena(100, 100)
        radio = HeterogeneousRange(30.0)
        nodes = [
            Node(0, Point(10, 10), radio),
            Node(1, Point(35, 10), HeterogeneousRange(30.0)),
        ]
        topology = Topology(nodes, arena)
        assert topology.has_edge(0, 1)
        radio.degrade(0.5)  # range 15 < distance 25
        topology.invalidate()
        assert not topology.has_edge(0, 1)
        assert topology.has_edge(1, 0)


class TestDynamics:
    def test_advance_moves_and_invalidates(self):
        arena = Arena(100, 100)
        battery = Battery(LinearDrain(0.2))
        nodes = [
            Node(0, Point(10, 10), BatteryCoupledRange(40.0, battery), battery=battery),
            Node(1, Point(40, 10), FixedRange(40.0)),
        ]
        topology = Topology(nodes, arena)
        assert topology.has_edge(0, 1)
        for __ in range(4):  # battery 0.2 -> range 40*sqrt(0.2) ~ 17.9 < 30
            topology.advance()
        assert not topology.has_edge(0, 1)

    def test_dead_battery_no_out_edges(self):
        arena = Arena(100, 100)
        battery = Battery(LinearDrain(1.0))
        nodes = [
            Node(0, Point(10, 10), BatteryCoupledRange(40.0, battery), battery=battery),
            Node(1, Point(20, 10), FixedRange(40.0)),
        ]
        topology = Topology(nodes, arena)
        topology.advance()
        assert topology.out_neighbors(0) == set()
        assert topology.has_edge(1, 0)


class TestFixedTopology:
    def test_exact_edges(self, directed_cycle4):
        assert list(directed_cycle4.edges()) == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_survives_invalidate(self, directed_cycle4):
        directed_cycle4.invalidate()
        assert directed_cycle4.has_edge(0, 1)
        assert not directed_cycle4.has_edge(1, 0)

    def test_gateways(self, gateway_line4):
        assert gateway_line4.gateway_ids == [0]
        assert gateway_line4.node(0).is_gateway

    def test_rejects_bad_edges(self):
        with pytest.raises(TopologyError):
            fixed_topology(2, [(0, 5)])
        with pytest.raises(TopologyError):
            fixed_topology(2, [(0, 0)])
        with pytest.raises(TopologyError):
            fixed_topology(0, [])

    def test_advance_keeps_edges(self, ring6):
        before = ring6.edge_set()
        ring6.advance()
        assert ring6.edge_set() == before
