"""Unit tests for the network generators."""

import pytest

from repro.errors import ConfigurationError
from repro.net.generator import (
    GeneratorConfig,
    MANET_PRESET,
    MAPPING_PRESET,
    NetworkGenerator,
    generate_manet_network,
    generate_mapping_network,
)
from repro.net.mobility import Stationary


class TestGeneratorConfig:
    def test_presets_are_paper_scale(self):
        assert MAPPING_PRESET.node_count == 300
        assert MAPPING_PRESET.target_edges == 2164
        assert MANET_PRESET.node_count == 250
        assert MANET_PRESET.gateway_count == 12
        assert MANET_PRESET.mobile_fraction == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(node_count=1)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(range_heterogeneity=1.0)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(mobile_fraction=1.5)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(gateway_count=300)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(degradation_amount=1.0)

    def test_hashable_for_caching(self):
        assert hash(GeneratorConfig()) == hash(GeneratorConfig())


SMALL = GeneratorConfig(
    node_count=30,
    target_edges=None,
    range_heterogeneity=0.3,
    require_strong_connectivity=True,
)


class TestStaticGeneration:
    def test_node_count(self):
        topology = NetworkGenerator(SMALL, 1).generate_static()
        assert topology.node_count == 30

    def test_strongly_connected(self):
        for seed in range(5):
            topology = NetworkGenerator(SMALL, seed).generate_static()
            assert topology.is_strongly_connected()

    def test_deterministic_per_seed(self):
        a = NetworkGenerator(SMALL, 5).generate_static()
        b = NetworkGenerator(SMALL, 5).generate_static()
        assert a.edge_set() == b.edge_set()

    def test_different_seeds_differ(self):
        a = NetworkGenerator(SMALL, 1).generate_static()
        b = NetworkGenerator(SMALL, 2).generate_static()
        assert a.edge_set() != b.edge_set()

    def test_edge_target_respected(self):
        config = GeneratorConfig(
            node_count=60,
            target_edges=400,
            edge_tolerance=40,
            range_heterogeneity=0.2,
            require_strong_connectivity=True,
        )
        topology = NetworkGenerator(config, 3).generate_static()
        # Repair may push the count slightly above the tolerance window;
        # it must stay in the right ballpark.
        assert 300 <= topology.edge_count <= 600

    def test_heterogeneity_zero_gives_symmetric_links(self):
        config = GeneratorConfig(
            node_count=25,
            target_edges=None,
            range_heterogeneity=0.0,
            require_strong_connectivity=True,
        )
        topology = NetworkGenerator(config, 4).generate_static()
        for source, destination in topology.edges():
            assert topology.has_edge(destination, source)

    def test_degraded_fraction_marks_nodes(self):
        config = GeneratorConfig(
            node_count=30,
            target_edges=None,
            require_strong_connectivity=False,
            degraded_fraction=0.2,
            degradation_amount=0.3,
        )
        topology = NetworkGenerator(config, 5).generate_static()
        degraded = [
            n for n in topology.nodes if getattr(n.radio, "degradation", 0.0) > 0
        ]
        assert len(degraded) == 6

    def test_convenience_wrapper(self):
        topology = generate_mapping_network(1, SMALL)
        assert topology.node_count == 30


class TestManetGeneration:
    CONFIG = GeneratorConfig(
        node_count=40,
        target_edges=None,
        require_strong_connectivity=False,
        gateway_count=4,
        mobile_fraction=0.5,
    )

    def test_gateway_count_and_placement(self):
        topology = NetworkGenerator(self.CONFIG, 1).generate_manet()
        assert topology.gateway_ids == [0, 1, 2, 3]
        for gateway in topology.gateway_ids:
            node = topology.node(gateway)
            assert node.is_gateway
            assert isinstance(node.mobility, Stationary)

    def test_mobile_fraction(self):
        topology = NetworkGenerator(self.CONFIG, 1).generate_manet()
        mobile = [n for n in topology.nodes if n.is_mobile]
        assert len(mobile) == 20  # half of 40

    def test_gateways_never_mobile_or_battery_limited(self):
        topology = NetworkGenerator(self.CONFIG, 2).generate_manet()
        for gateway in topology.gateway_ids:
            node = topology.node(gateway)
            assert not node.is_mobile
            assert node.battery.level == 1.0

    def test_deterministic_including_movement(self):
        a = NetworkGenerator(self.CONFIG, 3).generate_manet()
        b = NetworkGenerator(self.CONFIG, 3).generate_manet()
        for __ in range(10):
            a.advance()
            b.advance()
        assert a.edge_set() == b.edge_set()

    def test_movement_changes_topology(self):
        topology = NetworkGenerator(self.CONFIG, 4).generate_manet()
        before = topology.edge_set()
        for __ in range(30):
            topology.advance()
        assert topology.edge_set() != before

    def test_convenience_wrapper_defaults_gateways(self):
        config = GeneratorConfig(
            node_count=30,
            target_edges=None,
            require_strong_connectivity=False,
            mobile_fraction=0.5,
        )
        topology = generate_manet_network(1, config)
        assert len(topology.gateway_ids) == 12
