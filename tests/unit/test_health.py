"""Unit tests for the suspicion/quarantine health monitor."""

import pytest

from repro.errors import ConfigurationError
from repro.net.health import HealthConfig, HealthMonitor, HealthReport
from repro.sim.hooks import HookRegistry


def monitor(**overrides):
    defaults = dict(
        alpha=0.3,
        suspect_threshold=0.4,
        clear_threshold=0.5,
        min_samples=4,
        probation_after=16,
        probation_successes=2,
    )
    defaults.update(overrides)
    return HealthMonitor(HealthConfig(**defaults))


class TestHealthConfig:
    def test_defaults_valid(self):
        HealthConfig()

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_alpha_out_of_range(self, alpha):
        with pytest.raises(ConfigurationError):
            HealthConfig(alpha=alpha)

    @pytest.mark.parametrize("threshold", [0.0, 1.0, -0.2])
    def test_suspect_threshold_out_of_range(self, threshold):
        with pytest.raises(ConfigurationError):
            HealthConfig(suspect_threshold=threshold)

    def test_clear_below_suspect_rejected(self):
        with pytest.raises(ConfigurationError):
            HealthConfig(suspect_threshold=0.5, clear_threshold=0.4)

    def test_unwinnable_probation_rejected(self):
        # One success with tiny alpha cannot lift the pinned quality
        # from the suspect threshold to the clear threshold.
        with pytest.raises(ConfigurationError, match="unwinnable"):
            HealthConfig(
                alpha=0.05,
                suspect_threshold=0.4,
                clear_threshold=0.9,
                probation_successes=1,
            )

    def test_longer_streak_makes_probation_winnable(self):
        # The same thresholds rejected above become winnable when the
        # streak requirement gives quality more successes to climb.
        HealthConfig(
            alpha=0.3,
            suspect_threshold=0.4,
            clear_threshold=0.75,
            probation_successes=4,
        )
        with pytest.raises(ConfigurationError, match="unwinnable"):
            HealthConfig(
                alpha=0.3,
                suspect_threshold=0.4,
                clear_threshold=0.75,
                probation_successes=1,
            )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("min_samples", 0),
            ("probation_after", 0),
            ("probation_successes", 0),
        ],
    )
    def test_count_fields_must_be_positive(self, field, value):
        with pytest.raises(ConfigurationError):
            HealthConfig(**{field: value})


class TestEvidence:
    def test_quality_is_ewma(self):
        m = monitor()
        m.observe(0, 1, False, now=0)
        # 0.7 * 1.0 + 0.3 * 0 = 0.7
        assert m._quality[(0, 1)] == pytest.approx(0.7)
        m.observe(0, 1, True, now=1)
        assert m._quality[(0, 1)] == pytest.approx(0.7 * 0.7 + 0.3)

    def test_no_quarantine_before_min_samples(self):
        m = monitor(min_samples=4)
        for step in range(3):
            m.observe(0, 1, False, now=step)
        assert not m.is_quarantined(0, 1)

    def test_quarantine_after_min_samples_of_failure(self):
        m = monitor(min_samples=4)
        for step in range(4):
            m.observe(0, 1, False, now=step)
        assert m.is_quarantined(0, 1)
        assert m.quarantines == 1

    def test_honest_link_never_quarantined(self):
        m = monitor()
        for step in range(50):
            m.observe(0, 1, True, now=step)
        assert not m.is_quarantined(0, 1)
        assert m.quarantines == 0

    def test_links_are_directed(self):
        m = monitor()
        for step in range(4):
            m.observe(0, 1, False, now=step)
        assert m.is_quarantined(0, 1)
        assert not m.is_quarantined(1, 0)

    def test_order_of_distinct_links_does_not_matter(self):
        a, b = monitor(), monitor()
        a.observe(0, 1, False, now=0)
        a.observe(2, 3, True, now=0)
        b.observe(2, 3, True, now=0)
        b.observe(0, 1, False, now=0)
        assert a._quality == b._quality
        assert a._state == b._state


class TestProbation:
    def quarantined(self):
        m = monitor()
        for step in range(4):
            m.observe(0, 1, False, now=step)
        assert m.is_quarantined(0, 1)
        return m

    def test_advance_releases_into_probation_after_window(self):
        m = self.quarantined()
        m.advance(now=3 + 15)
        assert m.is_quarantined(0, 1)
        m.advance(now=3 + 16)
        assert not m.is_quarantined(0, 1)
        # Probation pins the estimate at the suspect threshold.
        assert m._quality[(0, 1)] == pytest.approx(0.4)

    def test_single_probation_success_does_not_rehabilitate(self):
        m = self.quarantined()
        m.advance(now=19)
        m.observe(0, 1, True, now=19)
        assert m.rehabilitations == 0
        assert not m.is_quarantined(0, 1)  # still on probation

    def test_success_streak_rehabilitates(self):
        m = self.quarantined()
        m.advance(now=19)
        m.observe(0, 1, True, now=19)
        m.observe(0, 1, True, now=20)
        assert m.rehabilitations == 1
        assert not m.is_quarantined(0, 1)
        # Back to trusted: state entry removed entirely.
        assert (0, 1) not in m._state

    def test_probation_failure_requarantines_immediately(self):
        m = self.quarantined()
        m.advance(now=19)
        m.observe(0, 1, False, now=19)
        assert m.is_quarantined(0, 1)
        assert m.quarantines == 2

    def test_failure_resets_the_streak(self):
        m = self.quarantined()
        m.advance(now=19)
        m.observe(0, 1, True, now=19)
        m.observe(0, 1, False, now=20)  # re-quarantined
        m.advance(now=20 + 16)
        m.observe(0, 1, True, now=36)  # streak restarts at 1
        assert m.rehabilitations == 0
        m.observe(0, 1, True, now=37)
        assert m.rehabilitations == 1

    def test_rehabilitated_link_can_be_suspected_again(self):
        m = self.quarantined()
        m.advance(now=19)
        m.observe(0, 1, True, now=19)
        m.observe(0, 1, True, now=20)
        assert m.rehabilitations == 1
        for step in range(21, 40):
            m.observe(0, 1, False, now=step)
        assert m.is_quarantined(0, 1)
        assert m.quarantines == 2


class TestQueries:
    def test_filter_drops_quarantined(self):
        m = monitor()
        for step in range(4):
            m.observe(0, 1, False, now=step)
        assert m.filter_targets(0, [1, 2, 3]) == [2, 3]

    def test_filter_never_empties_the_candidate_list(self):
        m = monitor()
        for neighbor in (1, 2):
            for step in range(4):
                m.observe(0, neighbor, False, now=step)
        assert m.filter_targets(0, [1, 2]) == [1, 2]

    def test_filter_is_per_observer(self):
        m = monitor()
        for step in range(4):
            m.observe(0, 1, False, now=step)
        assert m.filter_targets(5, [1, 2]) == [1, 2]

    def test_quarantined_neighbors_sorted(self):
        m = monitor()
        for neighbor in (7, 3):
            for step in range(4):
                m.observe(0, neighbor, False, now=step)
        assert m.quarantined_neighbors(0) == [3, 7]
        assert m.quarantined_count() == 2

    def test_max_suspicion(self):
        m = monitor()
        assert m.max_suspicion() == 0.0
        m.observe(0, 1, False, now=0)
        assert m.max_suspicion() == pytest.approx(0.3)

    def test_report_snapshot(self):
        m = monitor()
        for step in range(4):
            m.observe(0, 1, False, now=step)
        m.observe(0, 2, True, now=0)
        report = m.report()
        assert report.quarantines == 1
        assert report.quarantined_final == 1
        assert report.links_tracked == 2
        assert report.worst_quality == pytest.approx(0.7**4)

    def test_report_round_trips_through_dict(self):
        report = HealthReport(
            quarantines=3,
            rehabilitations=1,
            quarantined_final=2,
            links_tracked=9,
            worst_quality=0.25,
        )
        assert HealthReport.from_dict(report.to_dict()) == report


class TestHooks:
    def test_quarantine_and_rehabilitation_fire_hooks(self):
        bus = HookRegistry()
        seen = []
        bus.subscribe(
            "neighbor_quarantined",
            lambda **kw: seen.append(("quarantined", kw["node"], kw["neighbor"])),
        )
        bus.subscribe(
            "neighbor_rehabilitated",
            lambda **kw: seen.append(("rehabilitated", kw["node"], kw["neighbor"])),
        )
        m = HealthMonitor(HealthConfig(), hooks=bus)
        for step in range(4):
            m.observe(0, 1, False, now=step)
        m.advance(now=19)
        m.observe(0, 1, True, now=19)
        m.observe(0, 1, True, now=20)
        assert seen == [("quarantined", 0, 1), ("rehabilitated", 0, 1)]


class TestDeterminism:
    def test_identical_histories_identical_state(self):
        history = [
            (0, 1, False),
            (0, 2, True),
            (0, 1, False),
            (0, 1, False),
            (0, 1, False),
            (0, 2, True),
        ]
        a, b = monitor(), monitor()
        for now, (node, neighbor, ok) in enumerate(history):
            a.observe(node, neighbor, ok, now)
            b.observe(node, neighbor, ok, now)
            a.advance(now)
            b.advance(now)
        assert a._quality == b._quality
        assert a._state == b._state
        assert a.report() == b.report()
