"""Unit tests for fault plans: the spec DSL, builders, and churn."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import (
    AGENT_POLICIES,
    FAULT_KINDS,
    AdversarySpec,
    FaultEvent,
    FaultPlan,
    parse_adversary_spec,
    parse_fault_plan,
)


class TestFaultEvent:
    def test_validates_kind(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "meteor", (1,))

    def test_validates_time(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(0, "crash", (1,))

    def test_validates_target_arity(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "crash", (1, 2))
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "blackout", (1,))

    def test_validates_shock_amount(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "shock", (1,), amount=0.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "shock", (1,), amount=1.5)

    def test_gateway_relative_only_for_node_faults(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "blackout", (1, 2), gateway_relative=True)

    def test_describe_round_trips_through_parser(self):
        events = [
            FaultEvent(5, "crash", (3,)),
            FaultEvent(6, "recover", (0,), gateway_relative=True),
            FaultEvent(7, "blackout", (2, 7)),
            FaultEvent(8, "shock", (4,), amount=0.5),
            FaultEvent(9, "kill", (3,)),
        ]
        spec = ";".join(e.describe() for e in events)
        assert parse_fault_plan(spec).events == tuple(events)


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan().recover(80, 3).crash(50, 3)
        assert [e.time for e in plan.events] == [50, 80]
        assert plan.first_fault_time == 50
        assert plan.last_fault_time == 80

    def test_builders_cover_every_kind(self):
        plan = (
            FaultPlan()
            .crash(10, 1)
            .recover(20, 1)
            .blackout(11, 0, 1)
            .restore(12, 0, 1)
            .battery_shock(13, 2, 0.4)
            .kill_agent(14, 0)
            .wipe_table(15, 3)
            .corrupt_table(16, 3)
            .loss_burst(17, 4, 0.5)
            .loss_clear(18, 4)
            .gray_failure(19, 5, rate=0.9)
            .gray_clear(20, 5)
            .flap_node(21, 6)
            .corrupt_agent(22, 1)
        )
        assert {e.kind for e in plan.events} == FAULT_KINDS

    def test_gateway_outage_pairs_crash_and_recover(self):
        plan = FaultPlan().gateway_outage(30, 60)
        assert [(e.kind, e.time, e.gateway_relative) for e in plan.events] == [
            ("crash", 30, True),
            ("recover", 60, True),
        ]

    def test_gateway_outage_must_end_after_start(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().gateway_outage(30, 30)

    def test_link_flap_alternates(self):
        plan = FaultPlan().link_flap(1, 2, times=(5, 20), downtime=3)
        assert [(e.kind, e.time) for e in plan.events] == [
            ("blackout", 5),
            ("restore", 8),
            ("blackout", 20),
            ("restore", 23),
        ]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(agent_policy="resurrect")
        for policy in AGENT_POLICIES:
            assert FaultPlan(agent_policy=policy).agent_policy == policy

    def test_hashable_and_picklable(self):
        plan = FaultPlan().crash(10, 1).with_policy("respawn")
        assert hash(plan) == hash(FaultPlan().crash(10, 1).with_policy("respawn"))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan().first_fault_time is None
        assert len(FaultPlan().crash(5, 0)) == 1


class TestParseFaultPlan:
    def test_full_spec(self):
        plan = parse_fault_plan(
            "policy=respawn; crash@50:gw0; recover@80:gw0; shock@30:5:0.5; kill@25:a3"
        )
        assert plan.agent_policy == "respawn"
        assert [e.kind for e in plan.events] == ["kill", "shock", "crash", "recover"]
        assert plan.events[2].gateway_relative is True

    def test_empty_segments_ignored(self):
        assert len(parse_fault_plan("crash@5:1;;  ;")) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "crash",  # no time/target
            "crash@5",  # no target
            "crash@x:1",  # non-numeric time
            "crash@5:x",  # non-numeric target
            "blackout@5:3",  # edge kind without a pair
            "kill@5:3",  # kill without the a prefix
            "meteor@5:3",  # unknown kind
            "policy=resurrect",  # unknown policy
            "shock@5:3:2.0",  # amount out of range
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_plan(bad)


class TestRandomChurn:
    def test_same_seed_same_plan(self):
        kwargs = dict(node_count=40, start=10, end=50, crashes=5)
        assert FaultPlan.random_churn(7, **kwargs) == FaultPlan.random_churn(7, **kwargs)

    def test_different_seed_or_name_different_plan(self):
        kwargs = dict(node_count=40, start=10, end=50, crashes=5)
        base = FaultPlan.random_churn(7, **kwargs)
        assert FaultPlan.random_churn(8, **kwargs) != base
        assert FaultPlan.random_churn(7, name="other", **kwargs) != base

    def test_victims_distinct_and_excluded_respected(self):
        plan = FaultPlan.random_churn(
            3, node_count=10, start=5, end=30, crashes=8, exclude=(0, 1)
        )
        victims = [e.target[0] for e in plan.events if e.kind == "crash"]
        assert len(set(victims)) == 8
        assert not {0, 1} & set(victims)

    def test_every_crash_has_a_later_recovery(self):
        plan = FaultPlan.random_churn(
            11, node_count=30, start=10, end=40, crashes=6,
            min_downtime=5, max_downtime=9,
        )
        crashes = {e.target[0]: e.time for e in plan.events if e.kind == "crash"}
        recoveries = {e.target[0]: e.time for e in plan.events if e.kind == "recover"}
        assert crashes.keys() == recoveries.keys()
        for node, crashed_at in crashes.items():
            assert 5 <= recoveries[node] - crashed_at <= 9

    def test_too_many_crashes_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random_churn(1, node_count=3, start=5, end=10, crashes=4)

    def test_bad_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random_churn(1, node_count=9, start=10, end=10, crashes=1)
        with pytest.raises(ConfigurationError):
            FaultPlan.random_churn(
                1, node_count=9, start=5, end=10, crashes=1,
                min_downtime=4, max_downtime=2,
            )


class TestAdversaryEvents:
    def test_grayfail_needs_a_rate(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "grayfail", (1,), amount=0.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "grayfail", (1,), amount=1.5)

    def test_grayfail_builder(self):
        plan = FaultPlan().gray_failure(10, 3, rate=0.9).gray_clear(40, 3)
        kinds = [event.kind for event in plan.events]
        assert kinds == ["grayfail", "grayclear"]
        assert plan.events[0].amount == 0.9

    def test_flap_validation(self):
        with pytest.raises(ConfigurationError, match="duty"):
            FaultEvent(5, "flap", (1,), amount=0.0, period=8, cycles=3)
        with pytest.raises(ConfigurationError, match="period"):
            FaultEvent(5, "flap", (1,), amount=0.5, period=1, cycles=3)
        with pytest.raises(ConfigurationError, match="cycles"):
            FaultEvent(5, "flap", (1,), amount=0.5, period=8, cycles=0)
        with pytest.raises(ConfigurationError, match="target"):
            FaultEvent(5, "flap", (1, 2, 3), amount=0.5, period=8, cycles=3)

    def test_period_and_cycles_rejected_off_flap(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "crash", (1,), period=8)

    def test_corruptagent_is_an_agent_fault(self):
        event = FaultPlan().corrupt_agent(25, 3).events[0]
        assert event.describe() == "corruptagent@25:a3"
        with pytest.raises(ConfigurationError):
            FaultEvent(25, "corruptagent", (3,), gateway_relative=True)

    @pytest.mark.parametrize(
        "spec",
        [
            "grayfail@30:5:0.9",
            "grayclear@60:5",
            "grayfail@30:gw0:0.5",
            "flap@30:5:0.5:8:3",
            "flap@30:2-7:0.5:8:3",
            "corruptagent@25:a3",
        ],
    )
    def test_spec_round_trips(self, spec):
        plan = parse_fault_plan(spec)
        assert len(plan) == 1
        assert plan.events[0].describe() == spec
        assert parse_fault_plan(plan.describe()).events == plan.events

    def test_gateway_relative_grayfail(self):
        event = parse_fault_plan("grayfail@30:gw1:0.9").events[0]
        assert event.gateway_relative
        assert event.target == (1,)


class TestRandomAdversary:
    def build(self, seed=7, **overrides):
        kwargs = dict(
            node_count=30,
            gray_fraction=0.2,
            gray_rate=0.9,
            corrupt_agents=3,
            population=10,
            exclude=(0, 1),
            name="adversary:test",
        )
        kwargs.update(overrides)
        return FaultPlan.random_adversary(seed, **kwargs)

    def test_deterministic_per_seed(self):
        assert self.build().events == self.build().events
        assert self.build(seed=8).events != self.build().events

    def test_name_splits_the_stream(self):
        assert (
            self.build(name="adversary:a").events
            != self.build(name="adversary:b").events
        )

    def test_counts_and_exclusions(self):
        plan = self.build()
        gray = [e for e in plan.events if e.kind == "grayfail"]
        corrupt = [e for e in plan.events if e.kind == "corruptagent"]
        # 20% of the 28 eligible nodes, rounded.
        assert len(gray) == 6
        assert len(corrupt) == 3
        assert len({e.target[0] for e in gray}) == len(gray)
        assert all(e.target[0] not in (0, 1) for e in gray)
        assert all(e.target[0] < 10 for e in corrupt)

    def test_flap_nodes_are_distinct_from_gray(self):
        plan = self.build(flap_nodes=4)
        gray = {e.target[0] for e in plan.events if e.kind == "grayfail"}
        flap = {e.target[0] for e in plan.events if e.kind == "flap"}
        assert not gray & flap
        assert len(flap) == 4

    def test_agent_policy_defaults_to_freeze(self):
        assert self.build().agent_policy == "freeze"

    def test_corrupting_more_agents_than_population_rejected(self):
        with pytest.raises(ConfigurationError):
            self.build(corrupt_agents=11)

    def test_too_many_victims_rejected(self):
        with pytest.raises(ConfigurationError):
            self.build(gray_fraction=1.0, flap_nodes=5)


class TestAdversarySpec:
    def test_bare_number_is_a_gray_fraction(self):
        spec = parse_adversary_spec("0.2")
        assert spec == AdversarySpec(gray_fraction=0.2)

    def test_long_form(self):
        spec = parse_adversary_spec("gray=0.3,rate=0.8,corrupt=2,flap=1,start=5")
        assert spec == AdversarySpec(
            gray_fraction=0.3,
            gray_rate=0.8,
            corrupt_agents=2,
            flap_nodes=1,
            start=5,
        )

    @pytest.mark.parametrize(
        "bad",
        ["", "gray", "meteor=1", "gray=lots", "1.5", "rate=0", "start=0"],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_adversary_spec(bad)

    def test_spec_is_hashable_and_frozen(self):
        spec = parse_adversary_spec("0.1")
        hash(spec)
        with pytest.raises(Exception):
            spec.gray_fraction = 0.5
