"""Unit tests for fault plans: the spec DSL, builders, and churn."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import (
    AGENT_POLICIES,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    parse_fault_plan,
)


class TestFaultEvent:
    def test_validates_kind(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "meteor", (1,))

    def test_validates_time(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(0, "crash", (1,))

    def test_validates_target_arity(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "crash", (1, 2))
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "blackout", (1,))

    def test_validates_shock_amount(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "shock", (1,), amount=0.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "shock", (1,), amount=1.5)

    def test_gateway_relative_only_for_node_faults(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(5, "blackout", (1, 2), gateway_relative=True)

    def test_describe_round_trips_through_parser(self):
        events = [
            FaultEvent(5, "crash", (3,)),
            FaultEvent(6, "recover", (0,), gateway_relative=True),
            FaultEvent(7, "blackout", (2, 7)),
            FaultEvent(8, "shock", (4,), amount=0.5),
            FaultEvent(9, "kill", (3,)),
        ]
        spec = ";".join(e.describe() for e in events)
        assert parse_fault_plan(spec).events == tuple(events)


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan().recover(80, 3).crash(50, 3)
        assert [e.time for e in plan.events] == [50, 80]
        assert plan.first_fault_time == 50
        assert plan.last_fault_time == 80

    def test_builders_cover_every_kind(self):
        plan = (
            FaultPlan()
            .crash(10, 1)
            .recover(20, 1)
            .blackout(11, 0, 1)
            .restore(12, 0, 1)
            .battery_shock(13, 2, 0.4)
            .kill_agent(14, 0)
            .wipe_table(15, 3)
            .corrupt_table(16, 3)
            .loss_burst(17, 4, 0.5)
            .loss_clear(18, 4)
        )
        assert {e.kind for e in plan.events} == FAULT_KINDS

    def test_gateway_outage_pairs_crash_and_recover(self):
        plan = FaultPlan().gateway_outage(30, 60)
        assert [(e.kind, e.time, e.gateway_relative) for e in plan.events] == [
            ("crash", 30, True),
            ("recover", 60, True),
        ]

    def test_gateway_outage_must_end_after_start(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().gateway_outage(30, 30)

    def test_link_flap_alternates(self):
        plan = FaultPlan().link_flap(1, 2, times=(5, 20), downtime=3)
        assert [(e.kind, e.time) for e in plan.events] == [
            ("blackout", 5),
            ("restore", 8),
            ("blackout", 20),
            ("restore", 23),
        ]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(agent_policy="resurrect")
        for policy in AGENT_POLICIES:
            assert FaultPlan(agent_policy=policy).agent_policy == policy

    def test_hashable_and_picklable(self):
        plan = FaultPlan().crash(10, 1).with_policy("respawn")
        assert hash(plan) == hash(FaultPlan().crash(10, 1).with_policy("respawn"))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan().first_fault_time is None
        assert len(FaultPlan().crash(5, 0)) == 1


class TestParseFaultPlan:
    def test_full_spec(self):
        plan = parse_fault_plan(
            "policy=respawn; crash@50:gw0; recover@80:gw0; shock@30:5:0.5; kill@25:a3"
        )
        assert plan.agent_policy == "respawn"
        assert [e.kind for e in plan.events] == ["kill", "shock", "crash", "recover"]
        assert plan.events[2].gateway_relative is True

    def test_empty_segments_ignored(self):
        assert len(parse_fault_plan("crash@5:1;;  ;")) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "crash",  # no time/target
            "crash@5",  # no target
            "crash@x:1",  # non-numeric time
            "crash@5:x",  # non-numeric target
            "blackout@5:3",  # edge kind without a pair
            "kill@5:3",  # kill without the a prefix
            "meteor@5:3",  # unknown kind
            "policy=resurrect",  # unknown policy
            "shock@5:3:2.0",  # amount out of range
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_plan(bad)


class TestRandomChurn:
    def test_same_seed_same_plan(self):
        kwargs = dict(node_count=40, start=10, end=50, crashes=5)
        assert FaultPlan.random_churn(7, **kwargs) == FaultPlan.random_churn(7, **kwargs)

    def test_different_seed_or_name_different_plan(self):
        kwargs = dict(node_count=40, start=10, end=50, crashes=5)
        base = FaultPlan.random_churn(7, **kwargs)
        assert FaultPlan.random_churn(8, **kwargs) != base
        assert FaultPlan.random_churn(7, name="other", **kwargs) != base

    def test_victims_distinct_and_excluded_respected(self):
        plan = FaultPlan.random_churn(
            3, node_count=10, start=5, end=30, crashes=8, exclude=(0, 1)
        )
        victims = [e.target[0] for e in plan.events if e.kind == "crash"]
        assert len(set(victims)) == 8
        assert not {0, 1} & set(victims)

    def test_every_crash_has_a_later_recovery(self):
        plan = FaultPlan.random_churn(
            11, node_count=30, start=10, end=40, crashes=6,
            min_downtime=5, max_downtime=9,
        )
        crashes = {e.target[0]: e.time for e in plan.events if e.kind == "crash"}
        recoveries = {e.target[0]: e.time for e in plan.events if e.kind == "recover"}
        assert crashes.keys() == recoveries.keys()
        for node, crashed_at in crashes.items():
            assert 5 <= recoveries[node] - crashed_at <= 9

    def test_too_many_crashes_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random_churn(1, node_count=3, start=5, end=10, crashes=4)

    def test_bad_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random_churn(1, node_count=9, start=10, end=10, crashes=1)
        with pytest.raises(ConfigurationError):
            FaultPlan.random_churn(
                1, node_count=9, start=5, end=10, crashes=1,
                min_downtime=4, max_downtime=2,
            )
