"""Unit tests for the Welch t-test, cross-checked against scipy."""

import random

import pytest
from scipy import stats as scipy_stats

from repro.analysis.compare import compare_samples, welch_t_test
from repro.errors import ExperimentError


class TestWelchBasics:
    def test_too_small_samples_rejected(self):
        with pytest.raises(ExperimentError):
            welch_t_test([1.0], [1.0, 2.0])

    def test_identical_constant_samples(self):
        result = welch_t_test([2.0, 2.0, 2.0], [2.0, 2.0])
        assert result.p_value == 1.0
        assert not result.significant()

    def test_disjoint_constant_samples(self):
        result = welch_t_test([1.0, 1.0], [5.0, 5.0])
        assert result.p_value == 0.0
        assert result.significant()

    def test_obvious_difference_significant(self):
        a = [10.0 + 0.1 * i for i in range(20)]
        b = [20.0 + 0.1 * i for i in range(20)]
        result = welch_t_test(a, b)
        assert result.significant()
        assert result.mean_difference == pytest.approx(-10.0)

    def test_same_distribution_not_significant(self):
        rng = random.Random(5)
        a = [rng.gauss(0, 1) for __ in range(40)]
        b = [rng.gauss(0, 1) for __ in range(40)]
        result = welch_t_test(a, b)
        assert result.p_value > 0.01

    def test_symmetry(self):
        a = [1.0, 2.0, 3.0, 4.0]
        b = [2.0, 3.0, 4.0, 6.0]
        ab = welch_t_test(a, b)
        ba = welch_t_test(b, a)
        assert ab.p_value == pytest.approx(ba.p_value)
        assert ab.statistic == pytest.approx(-ba.statistic)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_p_value_close_to_scipy(self, seed):
        rng = random.Random(seed)
        shift = rng.uniform(-1.0, 1.0)
        a = [rng.gauss(0, 1) for __ in range(40)]
        b = [rng.gauss(shift, 1.5) for __ in range(35)]
        ours = welch_t_test(a, b)
        theirs = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=5e-3)

    def test_degrees_of_freedom_match_scipy_formula(self):
        a = [1.0, 2.0, 3.0, 4.0, 8.0]
        b = [1.0, 1.1, 1.2]
        ours = welch_t_test(a, b)
        # scipy does not expose df directly; recompute Welch-Satterthwaite.
        import statistics

        va, vb = statistics.variance(a) / len(a), statistics.variance(b) / len(b)
        expected = (va + vb) ** 2 / (
            va**2 / (len(a) - 1) + vb**2 / (len(b) - 1)
        )
        assert ours.degrees_of_freedom == pytest.approx(expected)


class TestCompareSamples:
    def test_verdict_mentions_direction_and_significance(self):
        text = compare_samples([10.0] * 10, [1.0] * 10)
        assert "higher" in text
        assert "significant" in text

    def test_insignificant_verdict(self):
        rng = random.Random(9)
        a = [rng.gauss(0, 1) for __ in range(10)]
        b = [rng.gauss(0, 1) for __ in range(10)]
        text = compare_samples(a, b)
        assert "not significant" in text or "significant" in text
