"""Unit tests for meeting (direct-communication) protocols."""

import random

from repro.core.comms import (
    exchange_mapping_knowledge,
    exchange_routing_knowledge,
    group_by_location,
)
from repro.core.mapping_agents import ConscientiousAgent
from repro.core.routing_agents import GatewayTrack, OldestNodeAgent, RandomRoutingAgent


def mapping_agent(agent_id, location, seed=1):
    return ConscientiousAgent(agent_id, location, random.Random(seed))


def routing_agent(agent_id, location, visiting=True, seed=1):
    return OldestNodeAgent(
        agent_id, location, random.Random(seed), history_size=10, visiting=visiting
    )


class TestGroupByLocation:
    def test_groups(self):
        agents = [mapping_agent(0, 5), mapping_agent(1, 5), mapping_agent(2, 7)]
        groups = group_by_location(agents)
        assert {n: len(g) for n, g in groups.items()} == {5: 2, 7: 1}


class TestMappingExchange:
    def test_colocated_agents_share_edges(self):
        a = mapping_agent(0, 5)
        b = mapping_agent(1, 5)
        a.knowledge.observe_node(5, [6], time=1)
        b.knowledge.observe_node(5, [], time=1)
        meetings = exchange_mapping_knowledge([a, b])
        assert meetings == 1
        assert b.knowledge.knows_edge((5, 6))

    def test_separated_agents_do_not_share(self):
        a = mapping_agent(0, 5)
        b = mapping_agent(1, 6)
        a.knowledge.observe_node(5, [6], time=1)
        meetings = exchange_mapping_knowledge([a, b])
        assert meetings == 0
        assert not b.knowledge.knows_edge((5, 6))

    def test_exchange_is_symmetric(self):
        a = mapping_agent(0, 5)
        b = mapping_agent(1, 5)
        a.knowledge.observe_node(1, [2], time=1)
        b.knowledge.observe_node(3, [4], time=2)
        a.location = b.location = 5
        exchange_mapping_knowledge([a, b])
        assert a.knowledge.knows_edge((3, 4))
        assert b.knowledge.knows_edge((1, 2))

    def test_order_independence(self):
        # Running the same exchange with reversed agent order yields the
        # same post-state: the group union is computed from snapshots.
        def build():
            a = mapping_agent(0, 5)
            b = mapping_agent(1, 5)
            a.knowledge.observe_node(1, [2], time=1)
            b.knowledge.observe_node(3, [4], time=2)
            return a, b

        a1, b1 = build()
        exchange_mapping_knowledge([a1, b1])
        a2, b2 = build()
        exchange_mapping_knowledge([b2, a2])
        assert a1.knowledge.all_edges == a2.knowledge.all_edges
        assert b1.knowledge.all_edges == b2.knowledge.all_edges

    def test_three_way_meeting(self):
        agents = [mapping_agent(i, 5, seed=i) for i in range(3)]
        for index, agent in enumerate(agents):
            agent.knowledge.observe_node(index, [index + 10], time=1)
        exchange_mapping_knowledge(agents)
        for agent in agents:
            assert agent.knowledge.known_edge_count == 3


class TestRoutingExchange:
    def test_best_track_wins_for_everyone(self):
        a = routing_agent(0, 5)
        b = routing_agent(1, 5, seed=2)
        a.tracks = {9: GatewayTrack(hops=6, visited_at=1)}
        b.tracks = {9: GatewayTrack(hops=2, visited_at=2)}
        meetings = exchange_routing_knowledge([a, b])
        assert meetings == 1
        assert a.tracks[9].hops == 2
        assert b.tracks[9].hops == 2

    def test_tracks_union_over_gateways(self):
        a = routing_agent(0, 5)
        b = routing_agent(1, 5, seed=2)
        a.tracks = {8: GatewayTrack(hops=1, visited_at=1)}
        b.tracks = {9: GatewayTrack(hops=3, visited_at=2)}
        exchange_routing_knowledge([a, b])
        assert set(a.tracks) == set(b.tracks) == {8, 9}

    def test_non_visiting_agents_excluded(self):
        a = routing_agent(0, 5, visiting=False)
        b = routing_agent(1, 5, visiting=True, seed=2)
        b.tracks = {9: GatewayTrack(hops=1, visited_at=1)}
        meetings = exchange_routing_knowledge([a, b])
        assert meetings == 0
        assert a.tracks == {}

    def test_histories_become_identical(self):
        a = routing_agent(0, 5)
        b = routing_agent(1, 5, seed=2)
        a.history.record(1, 10)
        b.history.record(2, 20)
        exchange_routing_knowledge([a, b])
        assert a.history.snapshot() == b.history.snapshot()

    def test_random_agents_also_exchange(self):
        a = RandomRoutingAgent(0, 5, random.Random(1), history_size=5, visiting=True)
        b = RandomRoutingAgent(1, 5, random.Random(2), history_size=5, visiting=True)
        b.tracks = {9: GatewayTrack(hops=1, visited_at=1)}
        exchange_routing_knowledge([a, b])
        assert 9 in a.tracks
