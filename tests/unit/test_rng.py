"""Unit tests for deterministic RNG management."""

import random

from repro.rng import SeedSpawner, derive_seed, spawn_run_seeds


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_master_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456789, "stream") < 2**64

    def test_stable_across_processes(self):
        # Pin one value forever: catches accidental changes to the
        # derivation (which would silently re-randomize every experiment).
        assert derive_seed(2010, "mapping-net:0") == derive_seed(2010, "mapping-net:0")
        assert isinstance(derive_seed(0, ""), int)


class TestSeedSpawner:
    def test_same_name_same_stream(self):
        spawner = SeedSpawner(7)
        first = [spawner.stream("x").random() for __ in range(3)]
        second = [spawner.stream("x").random() for __ in range(3)]
        assert first == second

    def test_different_names_differ(self):
        spawner = SeedSpawner(7)
        assert spawner.stream("x").random() != spawner.stream("y").random()

    def test_streams_are_independent_objects(self):
        spawner = SeedSpawner(7)
        a = spawner.stream("x")
        b = spawner.stream("x")
        assert a is not b
        a.random()
        # consuming a does not advance b
        assert b.random() == SeedSpawner(7).stream("x").random()

    def test_child_namespacing(self):
        spawner = SeedSpawner(7)
        child = spawner.child("ns")
        assert child.master_seed == spawner.seed_for("ns")
        assert child.stream("x").random() != spawner.stream("x").random()

    def test_returns_stdlib_random(self):
        assert isinstance(SeedSpawner(1).stream("s"), random.Random)


class TestSpawnRunSeeds:
    def test_count(self):
        assert len(list(spawn_run_seeds(5, 10))) == 10

    def test_unique(self):
        seeds = list(spawn_run_seeds(5, 40))
        assert len(set(seeds)) == 40

    def test_deterministic(self):
        assert list(spawn_run_seeds(5, 4)) == list(spawn_run_seeds(5, 4))

    def test_zero_runs(self):
        assert list(spawn_run_seeds(5, 0)) == []
