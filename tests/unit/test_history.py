"""Unit tests for the bounded visit history."""

import pytest

from repro.core.history import VisitHistory
from repro.errors import ConfigurationError
from repro.types import NEVER


class TestVisitHistory:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            VisitHistory(0)

    def test_record_and_query(self):
        history = VisitHistory(5)
        history.record(3, 10)
        assert history.last_visit(3) == 10
        assert 3 in history
        assert len(history) == 1

    def test_unknown_is_never(self):
        assert VisitHistory(5).last_visit(99) == NEVER

    def test_revisit_updates(self):
        history = VisitHistory(5)
        history.record(3, 10)
        history.record(3, 20)
        assert history.last_visit(3) == 20
        assert len(history) == 1

    def test_eviction_of_stalest(self):
        history = VisitHistory(2)
        history.record(1, 10)
        history.record(2, 20)
        history.record(3, 30)
        assert history.last_visit(1) == NEVER  # forgotten
        assert history.last_visit(2) == 20
        assert history.last_visit(3) == 30

    def test_eviction_follows_recency_not_insertion(self):
        history = VisitHistory(2)
        history.record(1, 10)
        history.record(2, 20)
        history.record(1, 30)  # node 1 is now fresher than node 2
        history.record(3, 40)
        assert history.last_visit(2) == NEVER
        assert history.last_visit(1) == 30

    def test_merge_keeps_freshest(self):
        a = VisitHistory(5)
        b = VisitHistory(5)
        a.record(1, 10)
        b.record(1, 20)
        b.record(2, 5)
        a.merge_from(b)
        assert a.last_visit(1) == 20
        assert a.last_visit(2) == 5

    def test_merge_respects_capacity(self):
        a = VisitHistory(2)
        b = VisitHistory(5)
        for node, time in ((1, 10), (2, 20), (3, 30), (4, 40)):
            b.record(node, time)
        a.merge_from(b)
        assert len(a) == 2
        assert a.last_visit(4) == 40
        assert a.last_visit(3) == 30
        assert a.last_visit(1) == NEVER

    def test_merge_makes_agents_identical(self):
        # The paper's §III-F effect: after a meeting, identical history.
        a = VisitHistory(4)
        b = VisitHistory(4)
        a.record(1, 10)
        a.record(2, 12)
        b.record(3, 11)
        merged = VisitHistory(8)
        for h in (a, b):
            for node, time in h.items():
                merged.record(node, time)
        a.merge_from(merged)
        b.merge_from(merged)
        assert a.snapshot() == b.snapshot()

    def test_snapshot_is_copy(self):
        history = VisitHistory(3)
        history.record(1, 5)
        snap = history.snapshot()
        snap[1] = 99
        assert history.last_visit(1) == 5
