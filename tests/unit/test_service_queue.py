"""Job queue: journal replay, crash recovery, priority, cancel, requeue."""

import json

import pytest

from repro.errors import ExperimentError
from repro.service.queue import JobQueue
from repro.service.spec import spec_from_dict


def make_spec(name="sweep", **overrides):
    payload = {"name": name, "experiments": ["fig7"], "runs": 2}
    payload.update(overrides)
    return spec_from_dict(payload)


class TestSubmitAndLookup:
    def test_submit_assigns_sequential_fingerprinted_ids(self, tmp_path):
        queue = JobQueue(tmp_path)
        spec = make_spec()
        first = queue.submit(spec)
        second = queue.submit(spec)
        assert first.job_id == f"j0001-{spec.fingerprint()[:8]}"
        assert second.job_id == f"j0002-{spec.fingerprint()[:8]}"
        assert first.state == "queued"

    def test_get_unknown_job_lists_known(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_spec())
        with pytest.raises(ExperimentError, match="known jobs"):
            queue.get("j9999-deadbeef")

    def test_jobs_in_submission_order(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = [queue.submit(make_spec(), priority=p).job_id for p in (5, 1, 9)]
        assert [job.job_id for job in queue.jobs()] == ids


class TestClaimOrder:
    def test_priority_desc_then_fifo(self, tmp_path):
        queue = JobQueue(tmp_path)
        low = queue.submit(make_spec(), priority=1)
        high = queue.submit(make_spec(), priority=9)
        also_high = queue.submit(make_spec(), priority=9)
        order = [queue.claim_next().job_id for _ in range(3)]
        assert order == [high.job_id, also_high.job_id, low.job_id]

    def test_spec_priority_is_the_default(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec(priority=7))
        assert job.priority == 7
        assert queue.submit(make_spec(priority=7), priority=2).priority == 2

    def test_claim_marks_running(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_spec())
        job = queue.claim_next()
        assert job.state == "running"
        assert queue.claim_next() is None


class TestJournalReplay:
    def test_full_lifecycle_survives_reload(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")
        queue.transition(job.job_id, "done")

        reloaded = JobQueue(tmp_path)
        assert reloaded.get(job.job_id).state == "done"
        assert reloaded.counts()["done"] == 1

    def test_failure_detail_survives_reload(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")
        queue.transition(job.job_id, "failed", error="boom", drift=["m: off"])

        reloaded = JobQueue(tmp_path).get(job.job_id)
        assert reloaded.error == "boom"
        assert reloaded.drift == ["m: off"]

    def test_torn_trailing_line_dropped(self, tmp_path):
        queue = JobQueue(tmp_path)
        done = queue.submit(make_spec())
        queue.transition(done.job_id, "running")
        queue.transition(done.job_id, "done")
        journal = tmp_path / "jobs.jsonl"
        journal.write_text(journal.read_text()[:-20])  # died mid-append

        # the torn 'done' record is gone; the server's recovery pass
        # re-queues the job so the sweep resumes from its checkpoints.
        reloaded = JobQueue(tmp_path, recover=True)
        assert reloaded.get(done.job_id).state == "queued"

    def test_append_after_torn_tail_stays_parseable(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        journal = tmp_path / "jobs.jsonl"
        with journal.open("a") as handle:
            handle.write('{"kind": "stat')  # torn, no newline

        second = JobQueue(tmp_path)
        second.transition(job.job_id, "running")
        third = JobQueue(tmp_path)
        assert third.get(job.job_id).state in ("running", "queued")

    def test_empty_journal_rejected(self, tmp_path):
        (tmp_path / "jobs.jsonl").write_text("")
        with pytest.raises(ExperimentError, match="empty"):
            JobQueue(tmp_path)

    def test_bad_header_rejected(self, tmp_path):
        (tmp_path / "jobs.jsonl").write_text('{"kind": "header", "schema": 99}\n')
        with pytest.raises(ExperimentError, match="unsupported header"):
            JobQueue(tmp_path)


class TestCrashRecovery:
    def test_running_jobs_requeued_by_server_recovery(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")
        # simulate the owning process dying here.

        recovered = JobQueue(tmp_path, recover=True)
        assert recovered.get(job.job_id).state == "queued"
        # the recovery record is journalled, so a plain open agrees.
        assert JobQueue(tmp_path).get(job.job_id).state == "queued"

    def test_client_open_leaves_running_jobs_alone(self, tmp_path):
        # `repro jobs` / `repro cancel` against a LIVE server must not
        # requeue the job that server is legitimately running.
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")

        client = JobQueue(tmp_path)
        assert client.get(job.job_id).state == "running"
        queue.refresh()
        assert queue.get(job.job_id).state == "running"

    def test_recovery_note_in_journal(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")
        JobQueue(tmp_path, recover=True)
        records = [
            json.loads(line)
            for line in (tmp_path / "jobs.jsonl").read_text().splitlines()
        ]
        assert any("recovered" in record.get("note", "") for record in records)


class TestCancelAndRequeue:
    def test_cancel_queued_is_immediate(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        assert queue.request_cancel(job.job_id).state == "cancelled"
        assert queue.pending() == []

    def test_cancel_running_sets_flag(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")
        flagged = queue.request_cancel(job.job_id)
        assert flagged.state == "running"
        assert flagged.cancel_requested

    def test_cancel_flag_visible_cross_process(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")
        JobQueue(tmp_path).request_cancel(job.job_id)  # other process
        queue.refresh()
        assert queue.get(job.job_id).cancel_requested

    def test_cancel_finished_job_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")
        queue.transition(job.job_id, "done")
        with pytest.raises(ExperimentError, match="already finished"):
            queue.request_cancel(job.job_id)

    def test_requeue_clears_previous_outcome(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")
        queue.transition(job.job_id, "failed", error="boom", drift=["x"])
        requeued = queue.requeue(job.job_id)
        assert requeued.state == "queued"
        assert requeued.error is None
        assert requeued.drift == []
        assert not requeued.cancel_requested

    def test_requeue_done_job_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        queue.transition(job.job_id, "running")
        queue.transition(job.job_id, "done")
        with pytest.raises(ExperimentError, match="only failed or cancelled"):
            queue.requeue(job.job_id)


class TestClaimLocks:
    def test_held_lock_skips_to_next_candidate(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit(make_spec(), priority=9)
        second = queue.submit(make_spec(), priority=1)
        # another server holds the best job's lock mid-claim.
        queue.locks_dir.mkdir(parents=True, exist_ok=True)
        (queue.locks_dir / f"{first.job_id}.lock").write_text("12345\n")
        claimed = queue.claim_next()
        assert claimed.job_id == second.job_id
        assert queue.claim_next() is None  # first still locked elsewhere

    def test_two_servers_claim_disjoint_jobs(self, tmp_path):
        submitter = JobQueue(tmp_path)
        ids = {submitter.submit(make_spec()).job_id for _ in range(4)}
        a = JobQueue(tmp_path)
        b = JobQueue(tmp_path)
        claims = []
        for server in (a, b, a, b):
            claims.append(server.claim_next().job_id)
        assert len(set(claims)) == 4
        assert set(claims) == ids
        assert a.claim_next() is None and b.claim_next() is None

    def test_terminal_transition_releases_the_lock(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = queue.submit(make_spec())
        claimed = queue.claim_next()
        lock = queue.locks_dir / f"{claimed.job_id}.lock"
        assert lock.exists()
        queue.transition(job.job_id, "done")
        assert not lock.exists()

    def test_recovery_sweeps_stale_lock(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(make_spec())
        claimed = queue.claim_next()
        lock = queue.locks_dir / f"{claimed.job_id}.lock"
        assert lock.exists()
        # owning server dies; the next server recovers and re-claims.
        recovered = JobQueue(tmp_path, recover=True)
        assert not lock.exists()
        assert recovered.get(claimed.job_id).state == "queued"
        assert recovered.claim_next() is not None

    def test_stale_journal_view_abandons_claim(self, tmp_path):
        # server A read the journal before server B finished the job;
        # A's claim must notice the terminal state after locking.
        a = JobQueue(tmp_path)
        job = a.submit(make_spec())
        b = JobQueue(tmp_path)
        claimed = b.claim_next()
        b.transition(claimed.job_id, "done")
        assert a.claim_next() is None
        assert not (a.locks_dir / f"{job.job_id}.lock").exists()


def test_counts_and_idle(tmp_path):
    queue = JobQueue(tmp_path)
    assert queue.idle()
    first = queue.submit(make_spec())
    second = queue.submit(make_spec())
    queue.transition(first.job_id, "running")
    queue.transition(first.job_id, "done")
    assert not queue.idle()
    counts = queue.counts()
    assert counts["done"] == 1 and counts["queued"] == 1
    queue.request_cancel(second.job_id)
    assert queue.idle()
