"""Unit tests for 2D geometry primitives."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.net.geometry import Arena, Point


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_squared_consistent(self):
        a, b = Point(2, 3), Point(5, 7)
        assert a.distance_squared_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_zero_distance(self):
        p = Point(1.0, 1.0)
        assert p.distance_to(p) == 0.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5


class TestArena:
    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            Arena(0, 10)
        with pytest.raises(ConfigurationError):
            Arena(10, -1)

    def test_contains(self):
        arena = Arena(10, 20)
        assert arena.contains(Point(0, 0))
        assert arena.contains(Point(10, 20))
        assert not arena.contains(Point(10.01, 5))
        assert not arena.contains(Point(5, -0.01))

    def test_random_point_inside(self):
        arena = Arena(50, 30)
        rng = random.Random(3)
        for __ in range(100):
            assert arena.contains(arena.random_point(rng))

    def test_clamp(self):
        arena = Arena(10, 10)
        assert arena.clamp(Point(-5, 5)) == Point(0, 5)
        assert arena.clamp(Point(15, 12)) == Point(10, 10)
        assert arena.clamp(Point(3, 4)) == Point(3, 4)

    def test_diagonal(self):
        assert Arena(3, 4).diagonal() == pytest.approx(5.0)

    def test_diagonal_bounds_distances(self):
        arena = Arena(17, 9)
        rng = random.Random(4)
        for __ in range(50):
            a, b = arena.random_point(rng), arena.random_point(rng)
            assert a.distance_to(b) <= arena.diagonal() + 1e-9

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Arena(1, 1).width = 2

    def test_diagonal_value(self):
        assert Arena(1000, 1000).diagonal() == pytest.approx(1000 * math.sqrt(2))
