"""Unit tests for the pheromone field and ant routing agents."""

import random

import pytest

from repro.core.ant_agents import AntRoutingAgent
from repro.core.pheromone import PheromoneField
from repro.core.routing_agents import make_routing_agent
from repro.errors import ConfigurationError


class TestPheromoneField:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PheromoneField(evaporation=1.0)
        with pytest.raises(ConfigurationError):
            PheromoneField(initial=0.0)

    def test_baseline_strength(self):
        field = PheromoneField(initial=0.1)
        assert field.strength(0, 1) == pytest.approx(0.1)

    def test_deposit_accumulates(self):
        field = PheromoneField(initial=0.1)
        field.deposit(0, 1, 0.5)
        field.deposit(0, 1, 0.25)
        assert field.strength(0, 1) == pytest.approx(0.85)

    def test_deposit_validation(self):
        with pytest.raises(ConfigurationError):
            PheromoneField().deposit(0, 1, 0.0)

    def test_weights_align_with_candidates(self):
        field = PheromoneField(initial=0.1)
        field.deposit(0, 2, 0.9)
        weights = field.weights(0, [1, 2, 3])
        assert weights == pytest.approx([0.1, 1.0, 0.1])

    def test_evaporation_decays(self):
        field = PheromoneField(evaporation=0.5, initial=0.0001)
        field.deposit(0, 1, 1.0)
        field.evaporate()
        assert field.strength(0, 1) == pytest.approx(0.0001 + 0.5)

    def test_evaporation_prunes_residue(self):
        field = PheromoneField(evaporation=0.9)
        field.deposit(0, 1, 0.001)
        for __ in range(5):
            field.evaporate()
        assert field.trail_count() == 0

    def test_total_tracks_deposits(self):
        field = PheromoneField()
        assert field.total() == 0.0
        field.deposit(0, 1, 1.0)
        field.deposit(2, 3, 0.5)
        assert field.total() == pytest.approx(1.5)


def ant(seed=1, **kwargs):
    return AntRoutingAgent(0, 0, random.Random(seed), history_size=10, **kwargs)


class TestAntRoutingAgent:
    def test_registered_in_factory(self):
        agent = make_routing_agent(
            "ant", 0, 0, random.Random(1), follow_probability=0.5
        )
        assert isinstance(agent, AntRoutingAgent)
        assert agent.follow_probability == 0.5

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ant(follow_probability=1.5)
        with pytest.raises(ConfigurationError):
            ant(deposit_decay=0.0)

    def test_without_field_moves_randomly(self):
        agent = ant()
        assert agent.decide([1, 2, 3], time=1) in {1, 2, 3}

    def test_follows_strong_trail(self):
        agent = ant(follow_probability=1.0)
        field = PheromoneField(initial=0.001)
        field.deposit(0, 2, 100.0)
        agent.pheromone = field
        picks = [agent.decide([1, 2, 3], time=1) for __ in range(30)]
        assert picks.count(2) >= 28  # overwhelming weight on node 2

    def test_exploration_breaks_monopoly(self):
        agent = ant(follow_probability=0.0)
        field = PheromoneField(initial=0.001)
        field.deposit(0, 2, 100.0)
        agent.pheromone = field
        picks = {agent.decide([1, 2, 3], time=t) for t in range(60)}
        assert picks == {1, 2, 3}

    def test_deposits_toward_gateway_after_move(self):
        agent = ant()
        field = PheromoneField(initial=0.0001)
        agent.pheromone = field
        agent.move_to(5, time=1, target_is_gateway=True)  # on the gateway
        agent.move_to(6, time=2, target_is_gateway=False)
        # Standing at 6, it came from gateway 5 one hop ago: the trail on
        # node 6 toward node 5 must be reinforced.
        assert field.strength(6, 5) > field.initial

    def test_no_deposit_without_tracks(self):
        agent = ant()
        field = PheromoneField()
        agent.pheromone = field
        agent.move_to(5, time=1, target_is_gateway=False)
        assert field.total() == 0.0

    def test_closer_gateways_deposit_more(self):
        near = ant()
        far = ant(seed=2)
        field_near = PheromoneField(initial=0.0001)
        field_far = PheromoneField(initial=0.0001)
        near.pheromone = field_near
        far.pheromone = field_far
        near.move_to(5, time=1, target_is_gateway=True)
        near.move_to(6, time=2, target_is_gateway=False)
        far.move_to(5, time=1, target_is_gateway=True)
        for step, node in enumerate((6, 7, 8), start=2):
            far.move_to(node, time=step, target_is_gateway=False)
        assert field_near.total() > field_far.strength(8, 7) - field_far.initial
