"""Unit tests for the delta-aware connectivity cache."""

from repro.net.generator import GeneratorConfig, generate_manet_network
from repro.net.manual import fixed_topology
from repro.routing.connectivity import ConnectivityCache, connected_nodes
from repro.routing.table import RouteEntry, TableBank


def install(bank, node, gateway, next_hop, hops=1, installed_at=1, seen_at=0):
    bank.table(node).install(
        RouteEntry(
            gateway=gateway,
            next_hop=next_hop,
            hops=hops,
            installed_at=installed_at,
            gateway_seen_at=seen_at,
        )
    )


def line_with_gateway():
    """0(gw) - 1 - 2 - 3 bidirectional, with a working route chain."""
    edges = []
    for a, b in ((0, 1), (1, 2), (2, 3)):
        edges.extend([(a, b), (b, a)])
    topology = fixed_topology(4, edges, gateways=[0])
    bank = TableBank(4)
    install(bank, 3, gateway=0, next_hop=2, hops=3)
    install(bank, 2, gateway=0, next_hop=1, hops=2)
    install(bank, 1, gateway=0, next_hop=0, hops=1)
    return topology, bank


class TestCacheCorrectness:
    def test_matches_connected_nodes(self):
        topology, bank = line_with_gateway()
        cache = ConnectivityCache(topology, bank)
        assert cache.connected() == connected_nodes(topology, bank)

    def test_second_call_hits_cache(self):
        topology, bank = line_with_gateway()
        cache = ConnectivityCache(topology, bank)
        first = cache.connected()
        walks = cache.stats.walks
        second = cache.connected()
        assert second == first
        assert cache.stats.walks == walks  # replayed, no fresh walks
        assert cache.stats.hits > 0

    def test_failures_are_cached_too(self):
        topology = fixed_topology(3, [(0, 1), (1, 0)], gateways=[0])
        bank = TableBank(3)  # node 2 has no route and no links
        cache = ConnectivityCache(topology, bank)
        cache.connected()
        walks = cache.stats.walks
        assert cache.connected() == connected_nodes(topology, bank)
        assert cache.stats.walks == walks

    def test_removed_hop_edge_invalidates_route(self):
        topology, bank = line_with_gateway()
        cache = ConnectivityCache(topology, bank)
        assert 3 in cache.connected()
        topology.block_edge(2, 1)
        expected = connected_nodes(topology, bank)
        assert cache.connected() == expected
        assert 3 not in expected
        assert cache.stats.invalidated > 0

    def test_route_change_invalidates_visitors(self):
        topology, bank = line_with_gateway()
        cache = ConnectivityCache(topology, bank)
        cache.connected()
        # A *better* (fresher sighting) route through a dead pointer at
        # node 2 breaks the chain for 2 and 3.
        install(bank, 2, gateway=0, next_hop=3, hops=1, installed_at=9, seen_at=9)
        expected = connected_nodes(topology, bank)
        assert cache.connected() == expected
        assert expected == {0, 1}

    def test_same_signature_reinstall_keeps_cache(self):
        topology, bank = line_with_gateway()
        cache = ConnectivityCache(topology, bank)
        cache.connected()
        walks = cache.stats.walks
        # Refresh node 2's route: same gateway, same next hop, newer
        # stamp.  The version bumps but the next-hop signature is
        # unchanged, so no trace may be invalidated.
        install(bank, 2, gateway=0, next_hop=1, hops=2, installed_at=8)
        assert bank.table(2).version > 0
        assert cache.connected() == connected_nodes(topology, bank)
        assert cache.stats.walks == walks
        assert cache.stats.invalidated == 0

    def test_gateway_crash_flushes(self):
        topology, bank = line_with_gateway()
        cache = ConnectivityCache(topology, bank)
        assert cache.connected() == {0, 1, 2, 3}
        topology.set_node_down(0)
        expected = connected_nodes(topology, bank)
        assert cache.connected() == expected
        assert 0 not in expected
        assert cache.stats.flushes >= 1

    def test_full_rebuild_flushes(self):
        topology, bank = line_with_gateway()
        cache = ConnectivityCache(topology, bank)
        cache.connected()
        topology.force_full_rebuild()
        assert cache.connected() == connected_nodes(topology, bank)
        assert cache.stats.flushes >= 1


class TestCacheUnderMobility:
    def test_equivalence_over_manet_run(self):
        config = GeneratorConfig(
            node_count=30,
            target_edges=None,
            range_heterogeneity=0.25,
            require_strong_connectivity=False,
            gateway_count=3,
            mobile_fraction=0.5,
        )
        topology = generate_manet_network(31, config)
        bank = TableBank(30)
        cache = ConnectivityCache(topology, bank, walk_ttl=16)
        gateways = topology.all_gateway_ids
        for step in range(30):
            topology.advance()
            # Churn some routes toward real gateways each step.
            node = step % 30
            install(
                bank,
                node,
                gateway=gateways[step % len(gateways)],
                next_hop=(node + 1) % 30,
                hops=1 + step % 4,
                installed_at=step,
                seen_at=step,
            )
            assert cache.connected() == connected_nodes(topology, bank, walk_ttl=16)
        assert cache.stats.hits > 0  # the cache actually did something
