"""Unit tests for the experiment registry and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.config import PAPER, QUICK
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments


class TestScales:
    def test_paper_matches_publication(self):
        assert PAPER.runs == 40
        assert PAPER.mapping_nodes == 300
        assert PAPER.mapping_target_edges == 2164
        assert PAPER.routing_nodes == 250
        assert PAPER.routing_gateways == 12
        assert PAPER.routing_population == 100
        assert PAPER.routing_steps == 300
        assert PAPER.routing_converged_after == 150
        assert PAPER.team_population == 15

    def test_quick_is_smaller_everywhere(self):
        assert QUICK.runs < PAPER.runs
        assert QUICK.mapping_nodes < PAPER.mapping_nodes
        assert QUICK.routing_nodes < PAPER.routing_nodes
        assert QUICK.routing_steps < PAPER.routing_steps

    def test_generator_configs(self):
        mapping = PAPER.mapping_generator_config()
        assert mapping.node_count == 300
        assert mapping.require_strong_connectivity
        routing = PAPER.routing_generator_config()
        assert routing.gateway_count == 12
        assert routing.mobile_fraction == 0.5


class TestRegistry:
    def test_all_figures_registered(self):
        for figure in range(1, 12):
            assert f"fig{figure}" in EXPERIMENTS

    def test_extension_and_ablations_registered(self):
        for experiment_id in ("ext1", "ext2", "abl1", "abl2", "abl3", "abl4"):
            assert experiment_id in EXPERIMENTS

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(ExperimentError, match="fig1"):
            get_experiment("fig99")

    def test_list_ordering(self):
        ids = [e.experiment_id for e in list_experiments()]
        assert ids[:3] == ["fig1", "fig2", "fig3"]
        assert ids.index("fig11") < ids.index("ext1") < ids.index("abl1")

    def test_scenarios_assigned(self):
        assert EXPERIMENTS["fig1"].scenario == "mapping"
        assert EXPERIMENTS["fig7"].scenario == "routing"


class TestCliParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig1"])
        assert args.experiment == "fig1"
        assert not args.paper_scale
        assert args.seed == 2010

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "fig7", "--paper-scale", "--seed", "7", "--no-plot", "--quiet"]
        )
        assert args.paper_scale
        assert args.seed == 7
        assert args.no_plot
        assert args.quiet

    def test_output_dir_flags(self):
        args = build_parser().parse_args(
            ["run", "fig7", "--json-dir", "/tmp/a", "--svg-dir", "/tmp/b"]
        )
        assert args.json_dir == "/tmp/a"
        assert args.svg_dir == "/tmp/b"


class TestCliMain:
    def test_list_exit_code(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "ext1" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_command_round_trip(self, tmp_path, capsys):
        from repro.experiments.persistence import save_report
        from repro.experiments.report import ExperimentReport

        report = ExperimentReport("figY", "saved", "claim", columns=["a"])
        report.add_row("1")
        save_report(report, tmp_path)
        assert main(["report", str(tmp_path)]) == 0
        assert "figY: saved" in capsys.readouterr().out

    def test_report_command_missing(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 1
        assert "no reports" in capsys.readouterr().err

    def test_report_command_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "x.json"
        bad.write_text("{broken")
        assert main(["report", str(bad)]) == 2
        assert "error" in capsys.readouterr().err
