"""Unit tests for mapping agent movement policies."""

import random

import pytest

from repro.core.mapping_agents import (
    ConscientiousAgent,
    MAPPING_AGENT_KINDS,
    RandomAgent,
    SuperConscientiousAgent,
    make_mapping_agent,
)
from repro.core.stigmergy import StigmergyField
from repro.errors import ConfigurationError


def agent_of(cls, start=0, seed=1, stigmergic=False):
    return cls(0, start, random.Random(seed), stigmergic=stigmergic)


class TestFactory:
    def test_kinds_registered(self):
        assert set(MAPPING_AGENT_KINDS) == {
            "random",
            "conscientious",
            "super-conscientious",
        }

    def test_make_by_kind(self):
        agent = make_mapping_agent("random", 3, 7, random.Random(1))
        assert isinstance(agent, RandomAgent)
        assert agent.agent_id == 3
        assert agent.location == 7

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_mapping_agent("clever", 0, 0, random.Random(1))


class TestRandomAgent:
    def test_moves_to_some_neighbor(self):
        agent = agent_of(RandomAgent)
        choice = agent.choose_next([4, 5, 6], time=1)
        assert choice in {4, 5, 6}

    def test_stranded_returns_none(self):
        assert agent_of(RandomAgent).choose_next([], time=1) is None

    def test_uniformity(self):
        agent = agent_of(RandomAgent)
        picks = [agent.choose_next([1, 2], time=t) for t in range(200)]
        assert 50 < picks.count(1) < 150


class TestConscientiousAgent:
    def test_prefers_unvisited(self):
        agent = agent_of(ConscientiousAgent)
        agent.knowledge.observe_node(1, [], time=5)
        assert agent.choose_next([1, 2], time=6) == 2

    def test_prefers_least_recent(self):
        agent = agent_of(ConscientiousAgent)
        agent.knowledge.observe_node(1, [], time=5)
        agent.knowledge.observe_node(2, [], time=9)
        assert agent.choose_next([1, 2], time=10) == 1

    def test_ignores_second_hand(self):
        agent = agent_of(ConscientiousAgent)
        agent.knowledge.observe_node(1, [], time=5)
        # A peer reports node 2 visited very recently; conscientious
        # ignores that and still sees node 2 as never-visited.
        agent.knowledge.absorb(set(), {2: 100})
        assert agent.choose_next([1, 2], time=101) == 2

    def test_tie_break_among_equally_old(self):
        agent = agent_of(ConscientiousAgent)
        picks = {agent.choose_next([1, 2, 3], time=1) for __ in range(50)}
        assert picks <= {1, 2, 3}
        assert len(picks) > 1  # random tie-break actually varies


class TestSuperConscientiousAgent:
    def test_uses_second_hand(self):
        agent = agent_of(SuperConscientiousAgent)
        agent.knowledge.observe_node(1, [], time=5)
        agent.knowledge.absorb(set(), {2: 100})
        # Node 2 was (reportedly) visited at 100, node 1 first-hand at 5.
        assert agent.choose_next([1, 2], time=101) == 1

    def test_first_hand_still_counts(self):
        agent = agent_of(SuperConscientiousAgent)
        agent.knowledge.observe_node(1, [], time=50)
        agent.knowledge.absorb(set(), {2: 10})
        assert agent.choose_next([1, 2], time=60) == 2


class TestStigmergicBehaviour:
    def test_avoids_fresh_footprint(self):
        field = StigmergyField()
        field.stamp(node=0, agent=9, target=1, time=1)
        agent = agent_of(ConscientiousAgent, stigmergic=True)
        assert agent.choose_next([1, 2], time=1, field=field) == 2

    def test_plain_agent_ignores_footprints(self):
        field = StigmergyField()
        field.stamp(node=0, agent=9, target=1, time=1)
        agent = agent_of(ConscientiousAgent, stigmergic=False)
        agent.knowledge.observe_node(2, [], time=0)
        assert agent.choose_next([1, 2], time=1, field=field) == 1

    def test_fallback_when_everything_vetoed(self):
        field = StigmergyField()
        field.stamp(node=0, agent=9, target=1, time=1)
        agent = agent_of(RandomAgent, stigmergic=True)
        assert agent.choose_next([1], time=1, field=field) == 1

    def test_leave_footprint_only_when_stigmergic(self):
        field = StigmergyField()
        plain = agent_of(RandomAgent, stigmergic=False)
        plain.leave_footprint(5, time=1, field=field)
        assert field.total_marks() == 0
        stig = agent_of(RandomAgent, stigmergic=True)
        stig.leave_footprint(5, time=1, field=field)
        assert field.avoided_targets(0, now=1) == {5}

    def test_self_avoidance(self):
        # Single agent avoids repeating its previous exit from a node.
        field = StigmergyField()
        agent = agent_of(RandomAgent, stigmergic=True)
        agent.leave_footprint(1, time=1, field=field)
        picks = {agent.choose_next([1, 2, 3], time=2, field=field) for __ in range(30)}
        assert 1 not in picks


class TestStepProtocol:
    def test_observe_records_first_hand(self):
        agent = agent_of(RandomAgent, start=4)
        agent.observe([5, 6], time=3)
        assert agent.knowledge.first_hand_edges == {(4, 5), (4, 6)}
        assert agent.knowledge.last_first_hand_visit(4) == 3

    def test_move_to(self):
        agent = agent_of(RandomAgent, start=4)
        agent.move_to(9)
        assert agent.location == 9
