"""Unit tests for routing agents: tracks, movement, meetings."""

import random

import pytest

from repro.core.routing_agents import (
    GatewayTrack,
    OldestNodeAgent,
    RandomRoutingAgent,
    ROUTING_AGENT_KINDS,
    make_routing_agent,
)
from repro.core.stigmergy import StigmergyField
from repro.errors import ConfigurationError


def agent_of(cls, start=0, seed=1, history=5, **kwargs):
    return cls(0, start, random.Random(seed), history_size=history, **kwargs)


class TestGatewayTrack:
    def test_stepped(self):
        track = GatewayTrack(hops=2, visited_at=10)
        assert track.stepped() == GatewayTrack(hops=3, visited_at=10)

    def test_better_than_fewer_hops(self):
        assert GatewayTrack(1, 5).better_than(GatewayTrack(3, 9))

    def test_better_than_fresher_on_tie(self):
        assert GatewayTrack(2, 9).better_than(GatewayTrack(2, 5))
        assert not GatewayTrack(2, 5).better_than(GatewayTrack(2, 9))


class TestFactory:
    def test_kinds(self):
        assert set(ROUTING_AGENT_KINDS) == {"random", "oldest-node", "ant"}

    def test_make(self):
        agent = make_routing_agent("oldest-node", 2, 5, random.Random(1), history_size=7)
        assert isinstance(agent, OldestNodeAgent)
        assert agent.history_size == 7

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_routing_agent("greedy", 0, 0, random.Random(1))

    def test_invalid_history(self):
        with pytest.raises(ConfigurationError):
            agent_of(RandomRoutingAgent, history=0)


class TestMovementAndTracks:
    def test_visiting_gateway_resets_track(self):
        agent = agent_of(RandomRoutingAgent)
        agent.move_to(3, time=5, target_is_gateway=True)
        assert agent.tracks == {3: GatewayTrack(hops=0, visited_at=5)}

    def test_track_hops_grow_with_moves(self):
        agent = agent_of(RandomRoutingAgent)
        agent.move_to(3, time=5, target_is_gateway=True)
        agent.move_to(4, time=6, target_is_gateway=False)
        agent.move_to(5, time=7, target_is_gateway=False)
        assert agent.tracks[3].hops == 2

    def test_track_forgotten_beyond_history(self):
        agent = agent_of(RandomRoutingAgent, history=2)
        agent.move_to(3, time=5, target_is_gateway=True)
        agent.move_to(4, time=6, target_is_gateway=False)
        agent.move_to(5, time=7, target_is_gateway=False)
        agent.move_to(6, time=8, target_is_gateway=False)
        assert 3 not in agent.tracks

    def test_track_survives_to_exactly_history_size_hops(self):
        """The drop bound is ``track.hops + 1 <= history_size``: a track
        must still install at exactly ``history_size`` hops and be
        forgotten only on the hop after."""
        agent = agent_of(RandomRoutingAgent, history=3)
        agent.move_to(1, time=0, target_is_gateway=True)
        agent.move_to(2, time=1, target_is_gateway=False)
        agent.move_to(3, time=2, target_is_gateway=False)
        agent.move_to(4, time=3, target_is_gateway=False)
        # hops == history_size: still remembered and still installable.
        assert agent.tracks[1] == GatewayTrack(hops=3, visited_at=0)
        assert agent.installable_routes(came_from=3) == [(1, 3, 3, 0)]
        agent.move_to(5, time=4, target_is_gateway=False)
        # hops would become history_size + 1: forgotten.
        assert 1 not in agent.tracks
        assert agent.installable_routes(came_from=4) == []

    def test_move_returns_origin_and_records_history(self):
        agent = agent_of(RandomRoutingAgent, start=1)
        origin = agent.move_to(2, time=3, target_is_gateway=False)
        assert origin == 1
        assert agent.location == 2
        assert agent.history.last_visit(2) == 3

    def test_stay_on_gateway_seeds_track(self):
        agent = agent_of(RandomRoutingAgent, start=9)
        agent.stay(time=4, here_is_gateway=True)
        assert agent.tracks[9].hops == 0
        assert agent.history.last_visit(9) == 4

    def test_installable_routes_skip_zero_hop(self):
        agent = agent_of(RandomRoutingAgent)
        agent.move_to(3, time=5, target_is_gateway=True)
        assert agent.installable_routes(came_from=0) == []
        agent.move_to(4, time=6, target_is_gateway=False)
        assert agent.installable_routes(came_from=3) == [(3, 3, 1, 5)]


class TestDecide:
    def test_random_picks_neighbor(self):
        agent = agent_of(RandomRoutingAgent)
        assert agent.decide([4, 5], time=1) in {4, 5}

    def test_none_when_isolated(self):
        assert agent_of(RandomRoutingAgent).decide([], time=1) is None

    def test_oldest_node_prefers_forgotten(self):
        agent = agent_of(OldestNodeAgent, history=5)
        agent.history.record(4, 10)
        assert agent.decide([4, 5], time=11) == 5

    def test_oldest_node_prefers_least_recent(self):
        agent = agent_of(OldestNodeAgent, history=5)
        agent.history.record(4, 10)
        agent.history.record(5, 2)
        assert agent.decide([4, 5], time=11) == 5

    def test_forgetting_makes_node_attractive_again(self):
        agent = agent_of(OldestNodeAgent, history=1)
        agent.history.record(4, 10)
        agent.history.record(5, 11)  # evicts node 4 (capacity 1)
        assert agent.decide([4, 5], time=12) == 4

    def test_stigmergic_decide_avoids_marks(self):
        field = StigmergyField(freshness=8)
        field.stamp(node=0, agent=7, target=4, time=1)
        agent = agent_of(OldestNodeAgent, stigmergic=True)
        assert agent.decide([4, 5], time=1, field=field) == 5

    def test_leave_footprint_gated_on_flag(self):
        field = StigmergyField()
        plain = agent_of(RandomRoutingAgent)
        plain.leave_footprint(4, time=1, field=field)
        assert field.total_marks() == 0


class TestExchange:
    def test_adopts_better_track(self):
        a = agent_of(RandomRoutingAgent, visiting=True)
        b = agent_of(RandomRoutingAgent, seed=2, visiting=True)
        a.tracks = {9: GatewayTrack(hops=5, visited_at=1)}
        b.tracks = {9: GatewayTrack(hops=2, visited_at=3)}
        a.exchange_with([b])
        assert a.tracks[9] == GatewayTrack(hops=2, visited_at=3)

    def test_keeps_own_better_track(self):
        a = agent_of(RandomRoutingAgent, visiting=True)
        b = agent_of(RandomRoutingAgent, seed=2, visiting=True)
        a.tracks = {9: GatewayTrack(hops=1, visited_at=5)}
        b.tracks = {9: GatewayTrack(hops=4, visited_at=9)}
        a.exchange_with([b])
        assert a.tracks[9].hops == 1

    def test_histories_merge(self):
        a = agent_of(OldestNodeAgent, visiting=True)
        b = agent_of(OldestNodeAgent, seed=2, visiting=True)
        b.history.record(7, 42)
        a.exchange_with([b])
        assert a.history.last_visit(7) == 42
