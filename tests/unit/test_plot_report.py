"""Unit tests for ASCII plotting and experiment reports."""

import pytest

from repro.analysis.ascii_plot import ascii_plot, ascii_series_table
from repro.analysis.series import TimeSeries
from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport


class TestAsciiPlot:
    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            ascii_plot({})

    def test_renders_axes_and_legend(self):
        series = TimeSeries(list(range(10)), [v / 10 for v in range(10)])
        text = ascii_plot({"knowledge": series}, title="demo")
        assert "demo" in text
        assert "legend:" in text
        assert "knowledge" in text

    def test_constant_series_does_not_crash(self):
        series = TimeSeries([1, 2, 3], [0.5, 0.5, 0.5])
        assert "legend" in ascii_plot({"flat": series})

    def test_multiple_series_distinct_glyphs(self):
        a = TimeSeries([1, 2], [0.0, 1.0])
        b = TimeSeries([1, 2], [1.0, 0.0])
        text = ascii_plot({"a": a, "b": b})
        assert "o=a" in text
        assert "x=b" in text


class TestAsciiSeriesTable:
    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            ascii_series_table({})

    def test_samples_requested_times(self):
        series = TimeSeries([1, 2, 3], [0.1, 0.2, 0.3])
        text = ascii_series_table({"s": series}, sample_times=[1, 3])
        assert "0.100" in text
        assert "0.300" in text
        assert "0.200" not in text

    def test_missing_sample_shows_dash(self):
        series = TimeSeries([5, 6], [0.5, 0.6])
        text = ascii_series_table({"s": series}, sample_times=[1])
        assert "-" in text


class TestExperimentReport:
    def make_report(self):
        report = ExperimentReport(
            experiment_id="figX",
            title="demo experiment",
            paper_claim="something holds",
            columns=["variant", "value"],
        )
        report.add_row("a", 1.5)
        report.add_row("b", 2)
        return report

    def test_table_alignment(self):
        text = self.make_report().table_text()
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("variant")

    def test_render_contains_everything(self):
        report = self.make_report()
        report.series["curve"] = TimeSeries([1, 2], [0.0, 1.0])
        report.add_note("observed gap 0.5")
        text = report.render()
        assert "figX: demo experiment" in text
        assert "paper claim: something holds" in text
        assert "note: observed gap 0.5" in text
        assert "legend" in text

    def test_render_without_plots(self):
        report = self.make_report()
        report.series["curve"] = TimeSeries([1, 2], [0.0, 1.0])
        text = report.render(plots=False)
        assert "legend" not in text
        assert "time" in text  # series table still present

    def test_series_samples(self):
        report = self.make_report()
        assert report.series_samples([1]) is None
        report.series["curve"] = TimeSeries([1, 2], [0.25, 0.75])
        assert "0.250" in report.series_samples([1])
