"""Unit tests for the mapping world and its metrics."""

import random

import pytest

from repro.core.mapping_agents import ConscientiousAgent
from repro.errors import ConfigurationError
from repro.mapping.metrics import KnowledgeTracker
from repro.mapping.world import MappingWorld, MappingWorldConfig, run_mapping


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MappingWorldConfig(population=0)
        with pytest.raises(ConfigurationError):
            MappingWorldConfig(max_steps=0)
        with pytest.raises(ConfigurationError):
            MappingWorldConfig(degrade_fraction=1.5)

    def test_defaults(self):
        config = MappingWorldConfig()
        assert config.agent_kind == "conscientious"
        assert config.cooperation


class TestKnowledgeTracker:
    def test_records_fractions(self):
        tracker = KnowledgeTracker(total_edges=4)
        agent = ConscientiousAgent(0, 0, random.Random(1))
        agent.knowledge.observe_node(0, [1, 2], time=1)
        finished = tracker.record(1, [agent])
        assert not finished
        assert tracker.average_knowledge == [0.5]
        assert tracker.minimum_knowledge == [0.5]

    def test_finishing_detected_once(self):
        tracker = KnowledgeTracker(total_edges=1)
        agent = ConscientiousAgent(0, 0, random.Random(1))
        agent.knowledge.observe_node(0, [1], time=1)
        assert tracker.record(1, [agent])
        assert tracker.finishing_time == 1
        assert not tracker.record(2, [agent])  # only reported once
        assert tracker.finishing_time == 1

    def test_minimum_gates_finishing(self):
        tracker = KnowledgeTracker(total_edges=1)
        done = ConscientiousAgent(0, 0, random.Random(1))
        done.knowledge.observe_node(0, [1], time=1)
        behind = ConscientiousAgent(1, 0, random.Random(2))
        assert not tracker.record(1, [done, behind])
        assert tracker.minimum_knowledge == [0.0]

    def test_live_edges_mode_ignores_vanished_edges(self):
        tracker = KnowledgeTracker(total_edges=2)
        agent = ConscientiousAgent(0, 0, random.Random(1))
        agent.knowledge.observe_node(0, [1, 2], time=1)  # knows (0,1), (0,2)
        live = frozenset({(0, 1), (5, 6)})
        assert not tracker.record(1, [agent], live_edges=live)
        assert tracker.minimum_knowledge == [0.5]  # (0,2) no longer counts


class TestMappingWorld:
    def test_single_agent_finishes_line(self, line5):
        config = MappingWorldConfig(agent_kind="conscientious", max_steps=200)
        result = MappingWorld(line5, config, seed=1).run()
        assert result.finished
        assert result.finishing_time <= 50

    def test_random_agent_finishes_ring(self, ring6):
        config = MappingWorldConfig(agent_kind="random", max_steps=2000)
        result = MappingWorld(ring6, config, seed=2).run()
        assert result.finished

    def test_directed_cycle_forces_full_loop(self, directed_cycle4):
        config = MappingWorldConfig(agent_kind="conscientious", max_steps=50)
        result = MappingWorld(directed_cycle4, config, seed=1).run()
        # The agent can only go around; 4 distinct nodes must be stood on.
        assert result.finished
        assert result.finishing_time >= 4

    def test_unreachable_budget_returns_unfinished(self, line5):
        config = MappingWorldConfig(agent_kind="conscientious", max_steps=2)
        result = MappingWorld(line5, config, seed=1).run()
        assert not result.finished
        assert result.finishing_time is None
        assert result.steps_simulated == 2

    def test_team_faster_than_single(self, small_static_network):
        single = run_mapping(
            small_static_network,
            MappingWorldConfig(agent_kind="conscientious", population=1, max_steps=5000),
            seed=3,
        )
        team = run_mapping(
            small_static_network,
            MappingWorldConfig(agent_kind="conscientious", population=8, max_steps=5000),
            seed=3,
        )
        assert team.finishing_time < single.finishing_time

    def test_cooperation_off_slows_team(self, small_static_network):
        on = run_mapping(
            small_static_network,
            MappingWorldConfig(population=6, cooperation=True, max_steps=8000),
            seed=4,
        )
        off = run_mapping(
            small_static_network,
            MappingWorldConfig(population=6, cooperation=False, max_steps=8000),
            seed=4,
        )
        assert on.finishing_time <= off.finishing_time
        assert on.meetings > 0
        assert off.meetings == 0

    def test_determinism(self, small_static_network):
        config = MappingWorldConfig(population=4, max_steps=4000)
        a = run_mapping(small_static_network, config, seed=5)
        b = run_mapping(small_static_network, config, seed=5)
        assert a.finishing_time == b.finishing_time
        assert a.average_knowledge == b.average_knowledge

    def test_different_seeds_vary(self, small_static_network):
        config = MappingWorldConfig(population=4, max_steps=4000)
        results = {
            run_mapping(small_static_network, config, seed=s).finishing_time
            for s in range(6)
        }
        assert len(results) > 1

    def test_knowledge_series_monotone(self, small_static_network):
        config = MappingWorldConfig(population=4, max_steps=4000)
        result = run_mapping(small_static_network, config, seed=6)
        for earlier, later in zip(result.average_knowledge, result.average_knowledge[1:]):
            assert later >= earlier

    def test_degradation_shrinks_target(self, small_static_network):
        config = MappingWorldConfig(
            population=6,
            max_steps=8000,
            degrade_at=5,
            degrade_fraction=0.2,
            degrade_amount=0.4,
        )
        world = MappingWorld(small_static_network, config, seed=7)
        edges_before = small_static_network.edge_count
        result = world.run()
        assert small_static_network.edge_count < edges_before
        assert result.finished
