"""Unit tests for mobility models and the Node composite."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.net.battery import Battery, LinearDrain
from repro.net.geometry import Arena, Point
from repro.net.mobility import RandomVelocity, RandomWaypoint, Stationary
from repro.net.node import Node
from repro.net.radio import BatteryCoupledRange, FixedRange


class TestStationary:
    def test_never_moves(self):
        model = Stationary()
        position = Point(5, 5)
        assert model.move(position, Arena(10, 10)) == position


class TestRandomVelocity:
    def test_speed_in_range(self):
        for seed in range(20):
            model = RandomVelocity(random.Random(seed), 2.0, 8.0)
            assert 2.0 <= model.speed <= 8.0

    def test_moves_by_speed(self):
        model = RandomVelocity(random.Random(1), 3.0, 3.0)
        arena = Arena(1000, 1000)
        start = Point(500, 500)
        end = model.move(start, arena)
        assert start.distance_to(end) == pytest.approx(3.0)

    def test_stays_in_arena(self):
        arena = Arena(50, 50)
        model = RandomVelocity(random.Random(2), 10.0, 10.0)
        position = Point(2, 2)
        for __ in range(500):
            position = model.move(position, arena)
            assert arena.contains(position)

    def test_bounce_reverses_velocity(self):
        model = RandomVelocity(random.Random(3), 5.0, 5.0)
        arena = Arena(20, 20)
        # Walk into a wall repeatedly; velocity must flip, not escape.
        position = Point(19, 10)
        before = model.velocity
        for __ in range(10):
            position = model.move(position, arena)
        after = model.velocity
        assert math.hypot(after.x, after.y) == pytest.approx(
            math.hypot(before.x, before.y)
        )

    def test_fast_node_reflects_multiple_times_per_step(self):
        # Regression: a speed larger than the arena dimension overshoots
        # past the far wall; one reflection per axis left the position
        # outside the arena and clamping then pinned the node to a wall.
        arena = Arena(10, 10)
        for seed in range(25):
            model = RandomVelocity(random.Random(seed), 35.0, 35.0)
            position = Point(5, 5)
            for __ in range(50):
                position = model.move(position, arena)
                assert arena.contains(position)

    def test_fast_node_does_not_pin_to_wall(self):
        arena = Arena(10, 10)
        model = RandomVelocity(random.Random(7), 27.0, 27.0)
        position = Point(5, 5)
        positions = set()
        for __ in range(40):
            position = model.move(position, arena)
            positions.add((position.x, position.y))
        # A pinned node repeats one wall point; a healthy one keeps
        # ricocheting through distinct interior points.
        assert len(positions) > 10
        assert any(0.0 < x < 10.0 and 0.0 < y < 10.0 for x, y in positions)

    def test_exact_multiple_overshoot_terminates(self):
        # dx exactly 2*width bounces back to the start point in finite
        # reflections (guards the loop's termination reasoning).
        arena = Arena(10, 10)
        model = RandomVelocity(random.Random(1), 0.0, 0.0)
        model._vx, model._vy = 20.0, 0.0
        moved = model.move(Point(5, 5), arena)
        assert arena.contains(moved)
        assert moved.x == pytest.approx(5.0)

    def test_invalid_speeds(self):
        with pytest.raises(ConfigurationError):
            RandomVelocity(random.Random(1), -1.0, 2.0)
        with pytest.raises(ConfigurationError):
            RandomVelocity(random.Random(1), 5.0, 2.0)


class TestRandomWaypoint:
    def test_reaches_waypoints_and_stays_inside(self):
        arena = Arena(100, 100)
        model = RandomWaypoint(random.Random(5), 2.0, 6.0)
        position = Point(50, 50)
        for __ in range(300):
            position = model.move(position, arena)
            assert arena.contains(position)

    def test_pause_holds_position(self):
        arena = Arena(10, 10)
        model = RandomWaypoint(random.Random(6), 100.0, 100.0, pause=3)
        position = Point(5, 5)
        # First move teleports to the waypoint (speed >> arena).
        position = model.move(position, arena)
        held = [model.move(position, arena) for __ in range(3)]
        assert all(p == position for p in held)

    def test_step_bounded_by_speed(self):
        arena = Arena(100, 100)
        model = RandomWaypoint(random.Random(7), 2.0, 4.0)
        position = Point(0, 0)
        for __ in range(100):
            nxt = model.move(position, arena)
            assert position.distance_to(nxt) <= 4.0 + 1e-9
            position = nxt

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(random.Random(1), 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            RandomWaypoint(random.Random(1), 1.0, 1.0, pause=-1)


class TestNode:
    def test_defaults(self):
        node = Node(0, Point(1, 1), FixedRange(10.0))
        assert not node.is_gateway
        assert not node.is_mobile
        assert node.battery.level == 1.0

    def test_can_reach_within_range(self):
        a = Node(0, Point(0, 0), FixedRange(10.0))
        b = Node(1, Point(6, 8), FixedRange(5.0))  # distance 10
        assert a.can_reach(b)
        assert not b.can_reach(a)  # asymmetric ranges -> directed link

    def test_advance_drains_battery_and_moves(self):
        battery = Battery(LinearDrain(0.5))
        node = Node(
            0,
            Point(50, 50),
            BatteryCoupledRange(10.0, battery),
            battery=battery,
            mobility=RandomVelocity(random.Random(1), 1.0, 1.0),
        )
        arena = Arena(100, 100)
        start = node.position
        node.advance(arena)
        assert node.battery.level == pytest.approx(0.5)
        assert node.position != start
        assert node.is_mobile

    def test_stationary_node_advance_keeps_position(self):
        node = Node(0, Point(3, 3), FixedRange(5.0))
        node.advance(Arena(10, 10))
        assert node.position == Point(3, 3)

    def test_gateway_flag(self):
        node = Node(2, Point(0, 0), FixedRange(1.0), is_gateway=True)
        assert node.is_gateway
