"""Unit tests for routing tables."""

import pytest

from repro.errors import RoutingError
from repro.routing.table import RouteEntry, RoutingTable, TableBank, TableGuard


def entry(gateway=9, next_hop=1, hops=3, installed_at=10, seen_at=0, sequence=0):
    return RouteEntry(
        gateway=gateway,
        next_hop=next_hop,
        hops=hops,
        installed_at=installed_at,
        gateway_seen_at=seen_at,
        sequence=sequence,
    )


class TestRouteEntry:
    def test_newer_gateway_sighting_wins(self):
        assert entry(seen_at=9, hops=8).fresher_than(entry(seen_at=5, hops=1))

    def test_fewer_hops_breaks_sighting_tie(self):
        assert entry(seen_at=5, hops=2).fresher_than(entry(seen_at=5, hops=5))
        assert not entry(seen_at=5, hops=5).fresher_than(entry(seen_at=5, hops=2))

    def test_newer_install_breaks_full_tie(self):
        assert entry(installed_at=11).fresher_than(entry(installed_at=10))

    def test_long_stale_route_cannot_displace_short_fresh_one(self):
        # The fig9-inverting case: an agent with a big history carries a
        # long track whose gateway sighting is old; installing it later
        # must NOT displace a short route with a fresher sighting.
        short_fresh = entry(hops=2, seen_at=40, installed_at=41)
        long_stale = entry(hops=19, seen_at=25, installed_at=44)
        assert not long_stale.fresher_than(short_fresh)


class TestRoutingTable:
    def test_ttl_validation(self):
        with pytest.raises(RoutingError):
            RoutingTable(ttl=0)

    def test_install_new(self):
        table = RoutingTable()
        assert table.install(entry())
        assert len(table) == 1
        assert table.entry_for(9) == entry()

    def test_install_rejects_zero_hops(self):
        with pytest.raises(RoutingError):
            RoutingTable().install(entry(hops=0))

    def test_fresher_replaces(self):
        table = RoutingTable()
        table.install(entry(seen_at=10, next_hop=1))
        assert table.install(entry(seen_at=11, next_hop=2))
        assert table.entry_for(9).next_hop == 2

    def test_staler_rejected(self):
        table = RoutingTable()
        table.install(entry(seen_at=10))
        assert not table.install(entry(seen_at=9, hops=1))
        assert table.entry_for(9).gateway_seen_at == 10

    def test_one_entry_per_gateway(self):
        table = RoutingTable()
        table.install(entry(gateway=8))
        table.install(entry(gateway=9))
        assert len(table) == 2

    def test_expire(self):
        table = RoutingTable(ttl=5)
        table.install(entry(installed_at=10))
        assert table.expire(now=14) == 0
        assert table.expire(now=16) == 1
        assert len(table) == 0

    def test_expire_exact_boundary(self):
        # An entry installed at t survives t .. t+ttl-1 and is dropped
        # by expire(t+ttl) exactly — the old `<` comparison let it live
        # one extra step.
        table = RoutingTable(ttl=5)
        table.install(entry(installed_at=10))
        assert table.expire(now=14) == 0
        assert len(table) == 1
        assert table.expire(now=15) == 1
        assert len(table) == 0

    def test_version_bumps_on_content_changes_only(self):
        table = RoutingTable(ttl=5)
        v0 = table.version
        table.install(entry(installed_at=10, seen_at=10))
        v1 = table.version
        assert v1 > v0
        # A rejected (staler) install changes nothing — version holds.
        assert not table.install(entry(installed_at=11, seen_at=3, hops=9))
        assert table.version == v1
        # A no-op expire holds; a dropping expire bumps.
        assert table.expire(now=12) == 0
        assert table.version == v1
        assert table.expire(now=15) == 1
        assert table.version > v1

    def test_ranking_memoized_until_change(self):
        table = RoutingTable()
        table.install(entry(gateway=8, seen_at=5))
        table.install(entry(gateway=9, seen_at=9))
        first = table.entries_by_preference()
        assert table.entries_by_preference() is first  # cached object
        table.install(entry(gateway=7, seen_at=7))
        second = table.entries_by_preference()
        assert second is not first
        assert [e.gateway for e in second] == [9, 7, 8]

    def test_no_ttl_never_expires(self):
        table = RoutingTable(ttl=None)
        table.install(entry(installed_at=0))
        assert table.expire(now=10**6) == 0

    def test_preference_order(self):
        table = RoutingTable()
        table.install(entry(gateway=7, seen_at=5, hops=2))
        table.install(entry(gateway=8, seen_at=9, hops=6))
        table.install(entry(gateway=9, seen_at=9, hops=1))
        preferred = table.entries_by_preference()
        assert [e.gateway for e in preferred] == [9, 8, 7]

    def test_clear(self):
        table = RoutingTable()
        table.install(entry())
        table.clear()
        assert len(table) == 0


class TestSequenceFloors:
    def test_accepting_an_entry_raises_the_floor(self):
        table = RoutingTable()
        assert table.sequence_floor(9) == 0
        table.install(entry(sequence=7))
        assert table.sequence_floor(9) == 7

    def test_floors_are_per_gateway(self):
        table = RoutingTable()
        table.install(entry(gateway=8, sequence=7))
        assert table.sequence_floor(8) == 7
        assert table.sequence_floor(9) == 0

    def test_below_floor_rejected_even_into_empty_slot(self):
        # The late-carrier case staleness control exists for: the slot
        # emptied (TTL expiry), then an agent carrying *older* gateway
        # information arrives.  Without the floor it would reinstall.
        table = RoutingTable(ttl=5)
        table.install(entry(seen_at=10, sequence=10, installed_at=10))
        assert table.expire(now=20) == 1
        assert len(table) == 0
        assert not table.install(entry(seen_at=4, sequence=4, installed_at=21))
        assert len(table) == 0

    def test_at_or_above_floor_accepted_after_expiry(self):
        table = RoutingTable(ttl=5)
        table.install(entry(seen_at=10, sequence=10, installed_at=10))
        table.expire(now=20)
        assert table.install(entry(seen_at=10, sequence=10, installed_at=21))
        assert table.install(entry(seen_at=12, sequence=12, installed_at=22))

    def test_clear_forgets_floors(self):
        # A crashed node's reborn table has no memory of what it saw.
        table = RoutingTable()
        table.install(entry(sequence=10))
        table.clear()
        assert table.sequence_floor(9) == 0
        assert table.install(entry(sequence=1))

    def test_drop_routes_via_next_hop_keeps_gateway_entries(self):
        table = RoutingTable()
        table.install(entry(gateway=8, next_hop=3))
        table.install(entry(gateway=9, next_hop=5))
        table.install(entry(gateway=3, next_hop=4))
        assert table.drop_routes_via_next_hop(3) == 1
        # gateway=3 survives: a dead *link* toward 3 says nothing about
        # reaching gateway 3 some other way.
        assert table.entry_for(3) is not None
        assert table.entry_for(8) is None
        assert table.entry_for(9) is not None

    def test_drop_routes_via_next_hop_keeps_floor(self):
        table = RoutingTable()
        table.install(entry(next_hop=3, sequence=10))
        table.drop_routes_via_next_hop(3)
        assert table.sequence_floor(9) == 10
        assert not table.install(entry(next_hop=5, sequence=9))

    def test_corrupt_preserves_sequence(self, rng):
        table = RoutingTable()
        table.install(entry(sequence=6))
        table.corrupt(rng, node_ids=[0, 1, 2])
        assert table.entry_for(9).sequence == 6


class TestTableBank:
    def test_validation(self):
        with pytest.raises(RoutingError):
            TableBank(0)

    def test_per_node_tables(self):
        bank = TableBank(3)
        bank.table(0).install(entry())
        assert len(bank.table(0)) == 1
        assert len(bank.table(1)) == 0

    def test_unknown_node(self):
        with pytest.raises(RoutingError):
            TableBank(3).table(5)

    def test_expire_all(self):
        bank = TableBank(2, ttl=5)
        bank.table(0).install(entry(installed_at=0))
        bank.table(1).install(entry(installed_at=8))
        assert bank.expire_all(now=10) == 1
        assert bank.total_entries() == 1


class TestTableGuard:
    def guarded(self, **overrides):
        return RoutingTable(guard=TableGuard(**overrides))

    def test_validation(self):
        with pytest.raises(RoutingError):
            TableGuard(max_hop_improvement=0)
        with pytest.raises(RoutingError):
            TableGuard(max_sequence_ahead=-1)

    def test_honest_install_accepted(self):
        table = self.guarded()
        # Sequence (the gateway sighting) in the past relative to the
        # install: exactly what honest agent visits produce.
        assert table.install(entry(installed_at=10, seen_at=8, sequence=8))
        assert table.guard_rejections == 0

    def test_future_stamped_sequence_rejected(self):
        table = self.guarded()
        forged = entry(installed_at=10, sequence=11)
        assert not table.install(forged)
        assert table.entry_for(9) is None
        assert table.guard_rejections == 1

    def test_sequence_ahead_bound_is_inclusive(self):
        table = self.guarded(max_sequence_ahead=5)
        assert table.install(entry(installed_at=10, sequence=15))
        assert not table.install(entry(installed_at=10, sequence=16, hops=1))
        assert table.guard_rejections == 1

    def test_implausible_hop_improvement_rejected(self):
        table = self.guarded(max_hop_improvement=2)
        table.install(entry(hops=9, seen_at=5, sequence=5, installed_at=6))
        forged = entry(hops=1, seen_at=6, sequence=6, installed_at=7)
        assert not table.install(forged)
        assert table.entry_for(9).hops == 9
        assert table.guard_rejections == 1

    def test_gradual_improvement_accepted(self):
        table = self.guarded(max_hop_improvement=2)
        table.install(entry(hops=9, seen_at=5, sequence=5, installed_at=6))
        assert table.install(entry(hops=7, seen_at=6, sequence=6, installed_at=7))
        assert table.entry_for(9).hops == 7
        assert table.guard_rejections == 0

    def test_hop_rule_needs_an_incumbent(self):
        # A 1-hop route into an empty slot is fine: the hop rule bounds
        # improvement over what the node already believes, not absolutes.
        table = self.guarded(max_hop_improvement=1)
        assert table.install(entry(hops=1, installed_at=10, seen_at=9, sequence=9))

    def test_rejections_survive_clear(self):
        table = self.guarded()
        table.install(entry(installed_at=10, sequence=11))
        table.clear()
        table.install(entry(installed_at=12, sequence=20))
        # Conservation against the world's overhead counters depends on
        # the counter never resetting with the table.
        assert table.guard_rejections == 2

    def test_unguarded_table_installs_forged_writes(self):
        table = RoutingTable()
        assert table.install(entry(installed_at=10, sequence=11))
        assert table.guard_rejections == 0

    def test_bank_threads_guard_to_every_table(self):
        bank = TableBank(3, guard=TableGuard())
        forged = entry(installed_at=10, sequence=11)
        for node in range(3):
            assert not bank.table(node).install(forged)
        assert bank.total_guard_rejections() == 3

    def test_bank_without_guard_counts_zero(self):
        bank = TableBank(2)
        bank.table(0).install(entry(installed_at=10, sequence=11))
        assert bank.total_guard_rejections() == 0
