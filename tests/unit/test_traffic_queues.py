"""Unit tests for bounded payload queues and the arrival generator."""

import pytest

from repro.errors import ConfigurationError
from repro.rng import SeedSpawner
from repro.traffic.generator import PayloadGenerator
from repro.traffic.payload import Payload, PayloadCopy
from repro.traffic.queues import PayloadQueue


def _copy(pid, priority=0):
    return PayloadCopy(Payload(pid, source=0, created_at=0, ttl=10, priority=priority))


class TestPayloadQueue:
    def test_accepts_until_capacity(self):
        queue = PayloadQueue(2)
        assert queue.offer(_copy(0)) == (True, None)
        assert queue.offer(_copy(1)) == (True, None)
        assert queue.full
        accepted, evicted = queue.offer(_copy(2))
        assert not accepted and evicted is None  # drop-tail refuses the arrival
        assert len(queue) == 2

    def test_drop_oldest_evicts_head(self):
        queue = PayloadQueue(2, policy="drop-oldest")
        queue.offer(_copy(0))
        queue.offer(_copy(1))
        accepted, evicted = queue.offer(_copy(2))
        assert accepted
        assert evicted.payload.pid == 0
        assert 0 not in queue and 2 in queue

    def test_priority_evicts_lowest_only_when_outranked(self):
        queue = PayloadQueue(2, policy="priority")
        queue.offer(_copy(0, priority=1))
        queue.offer(_copy(1, priority=3))
        # arrival outranks the priority-1 occupant
        accepted, evicted = queue.offer(_copy(2, priority=2))
        assert accepted and evicted.payload.pid == 0
        # arrival that outranks nobody is refused
        accepted, evicted = queue.offer(_copy(3, priority=1))
        assert not accepted and evicted is None

    def test_duplicate_pid_refused(self):
        queue = PayloadQueue(4)
        queue.offer(_copy(7))
        accepted, evicted = queue.offer(_copy(7))
        assert not accepted and evicted is None
        assert queue.counters()["duplicates"] == 1
        assert len(queue) == 1

    def test_remove_and_purge(self):
        queue = PayloadQueue(4)
        for pid in range(3):
            queue.offer(_copy(pid))
        removed = queue.remove(1)
        assert removed.payload.pid == 1
        assert queue.remove(1) is None
        purged = queue.purge({0, 2, 99})
        assert sorted(c.payload.pid for c in purged) == [0, 2]
        assert len(queue) == 0

    def test_counters_track_peak_and_rejections(self):
        queue = PayloadQueue(1)
        queue.offer(_copy(0))
        queue.offer(_copy(1))
        counters = queue.counters()
        assert counters["offered"] == 2
        assert counters["accepted"] == 1
        assert counters["rejected"] == 1
        assert counters["peak"] == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            PayloadQueue(0)
        with pytest.raises(ConfigurationError):
            PayloadQueue(4, policy="random-drop")


class TestPayloadGenerator:
    def _generator(self, **overrides):
        settings = dict(
            profile="poisson",
            rate=1.0,
            sources=[1, 2, 3],
            spawner=SeedSpawner(11),
            ttl=20,
        )
        settings.update(overrides)
        return PayloadGenerator(**settings)

    def test_same_seed_same_arrivals(self):
        a = self._generator()
        b = self._generator()
        for now in range(50):
            left = [(p.pid, p.source, p.created_at) for p in a.step(now)]
            right = [(p.pid, p.source, p.created_at) for p in b.step(now)]
            assert left == right

    def test_different_seeds_differ(self):
        a = self._generator()
        b = self._generator(spawner=SeedSpawner(12))
        streams = [
            [(p.pid, p.source) for now in range(80) for p in g.step(now)]
            for g in (a, b)
        ]
        assert streams[0] != streams[1]

    def test_cbr_profile_is_exact(self):
        generator = self._generator(profile="cbr", rate=0.5)
        counts = [len(generator.step(now)) for now in range(10)]
        assert sum(counts) == 5  # 0.5 payloads/step over 10 steps
        assert max(counts) == 1

    def test_burst_profile_fires_on_schedule(self):
        generator = self._generator(
            profile="burst", burst_size=4, burst_every=5, start=2
        )
        counts = {now: len(generator.step(now)) for now in range(12)}
        assert counts[2] == 4 and counts[7] == 4
        assert all(counts[n] == 0 for n in counts if n not in (2, 7))

    def test_start_stop_window(self):
        generator = self._generator(profile="cbr", rate=1.0, start=3, stop=6)
        counts = [len(generator.step(now)) for now in range(10)]
        assert counts == [0, 0, 0, 1, 1, 1, 0, 0, 0, 0]

    def test_unicast_destination_never_source(self):
        generator = self._generator(
            rate=2.0, unicast_targets=[1, 2, 3], sources=[1, 2, 3]
        )
        payloads = [p for now in range(60) for p in generator.step(now)]
        assert payloads
        assert all(p.destination is not None for p in payloads)
        assert all(p.destination != p.source for p in payloads)

    def test_pids_are_sequential(self):
        generator = self._generator(rate=2.0)
        payloads = [p for now in range(30) for p in generator.step(now)]
        assert [p.pid for p in payloads] == list(range(len(payloads)))
