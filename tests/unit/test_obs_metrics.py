"""Unit: the metrics registry and its associative snapshot merge."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry, merge_snapshots


def _registry_a():
    registry = MetricsRegistry()
    registry.inc("hops", 3)
    registry.inc("meetings")
    registry.gauge_set("alive", 5)
    registry.histogram("frac", [0.5, 1.0])
    registry.observe("frac", 0.2)
    registry.observe("frac", 0.7)
    registry.ring("series", capacity=8)
    registry.ring_record("series", 1, 0.1)
    registry.ring_record("series", 3, 0.3)
    return registry


def _registry_b():
    registry = MetricsRegistry()
    registry.inc("hops", 4)
    registry.inc("losses", 2)
    registry.gauge_set("alive", 7)
    registry.histogram("frac", [0.5, 1.0])
    registry.observe("frac", 0.9)
    registry.ring("series", capacity=8)
    registry.ring_record("series", 2, 0.2)
    return registry


def _registry_c():
    registry = MetricsRegistry()
    registry.inc("hops", 1)
    registry.gauge_set("alive", 6)
    registry.ring_record("series", 4, 0.4)
    return registry


class TestInstruments:
    def test_counters_accumulate_and_default_to_zero(self):
        registry = MetricsRegistry()
        assert registry.counter("x") == 0
        registry.inc("x")
        registry.inc("x", 5)
        assert registry.counter("x") == 6

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        assert registry.gauge("level") is None
        registry.gauge_set("level", 2)
        registry.gauge_set("level", 1)
        assert registry.gauge("level") == 1.0

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        registry.histogram("h", [1.0, 2.0])
        for value in (0.5, 1.5, 99.0):
            registry.observe("h", value)
        snapshot = registry.snapshot()["histograms"]["h"]
        assert snapshot["counts"] == [1, 1, 1]
        assert snapshot["count"] == 3
        assert snapshot["total"] == pytest.approx(101.0)

    def test_histogram_must_be_declared(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().observe("nope", 1.0)

    def test_histogram_redeclare_same_bounds_ok_different_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", [1.0])
        registry.histogram("h", [1.0])  # idempotent
        with pytest.raises(ConfigurationError):
            registry.histogram("h", [2.0])

    def test_histogram_bounds_must_ascend(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("h", [2.0, 1.0])
        with pytest.raises(ConfigurationError):
            registry.histogram("empty", [])

    def test_ring_evicts_oldest_and_counts_drops(self):
        registry = MetricsRegistry()
        registry.ring("r", capacity=2)
        for step in range(4):
            registry.ring_record("r", step, float(step))
        snapshot = registry.snapshot()["rings"]["r"]
        assert snapshot["times"] == [2, 3]
        assert snapshot["dropped"] == 2

    def test_ring_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().ring("r", capacity=0)


class TestSnapshotMerge:
    def test_snapshot_is_json_round_trippable(self):
        snapshot = _registry_a().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["schema"] == METRICS_SCHEMA

    def test_merge_semantics(self):
        merged = merge_snapshots([_registry_a().snapshot(), _registry_b().snapshot()])
        assert merged["counters"] == {"hops": 7, "meetings": 1, "losses": 2}
        assert merged["gauges"] == {"alive": 7.0}
        assert merged["histograms"]["frac"]["counts"] == [1, 2, 0]
        assert merged["histograms"]["frac"]["count"] == 3
        ring = merged["rings"]["series"]
        assert ring["times"] == [1, 2, 3]
        assert ring["values"] == [0.1, 0.2, 0.3]

    def test_merge_is_associative_and_commutative(self):
        a, b, c = (r.snapshot() for r in (_registry_a(), _registry_b(), _registry_c()))
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right
        assert merge_snapshots([c, a, b]) == left
        assert merge_snapshots([b, c, a]) == left

    def test_merge_does_not_mutate_inputs(self):
        a = _registry_a().snapshot()
        b = _registry_b().snapshot()
        a_copy = json.loads(json.dumps(a))
        b_copy = json.loads(json.dumps(b))
        merge_snapshots([a, b])
        assert a == a_copy and b == b_copy

    def test_single_and_empty_merges(self):
        a = _registry_a().snapshot()
        assert merge_snapshots([a]) == a
        empty = merge_snapshots([])
        assert empty["counters"] == {} and empty["rings"] == {}

    def test_mismatched_histogram_bounds_raise(self):
        one = MetricsRegistry()
        one.histogram("h", [1.0])
        other = MetricsRegistry()
        other.histogram("h", [2.0])
        with pytest.raises(ConfigurationError):
            merge_snapshots([one.snapshot(), other.snapshot()])

    def test_wrong_schema_raises(self):
        bad = _registry_a().snapshot()
        bad["schema"] = 999
        with pytest.raises(ConfigurationError):
            merge_snapshots([bad, _registry_b().snapshot()])

    def test_pool_shaped_merge_equals_serial_merge(self):
        """Merging per-worker partial merges equals merging every run flat."""
        runs = [_registry_a(), _registry_b(), _registry_c(), _registry_a()]
        flat = merge_snapshots([r.snapshot() for r in runs])
        worker_one = merge_snapshots([runs[0].snapshot(), runs[2].snapshot()])
        worker_two = merge_snapshots([runs[1].snapshot(), runs[3].snapshot()])
        assert merge_snapshots([worker_one, worker_two]) == flat
