"""Unit tests: worlds publish hooks that a TraceRecorder can consume."""

from repro.mapping.world import MappingWorld, MappingWorldConfig
from repro.routing.world import RoutingWorld, RoutingWorldConfig
from repro.sim.trace import TraceRecorder


class TestMappingHooks:
    def test_agent_moved_fired_per_move(self, line5):
        world = MappingWorld(
            line5, MappingWorldConfig(population=2, max_steps=10), seed=1
        )
        trace = TraceRecorder(kinds={"agent_moved"})
        world.engine.hooks.subscribe(
            "agent_moved",
            lambda time, agent, to: trace.record(time, "agent_moved", agent=agent, to=to),
        )
        world.run()
        moves = list(trace.of_kind("agent_moved"))
        assert moves, "agents on a line must move"
        assert {m.payload["agent"] for m in moves} <= {0, 1}

    def test_knowledge_recorded_every_step(self, line5):
        world = MappingWorld(
            line5, MappingWorldConfig(population=1, max_steps=5), seed=1
        )
        samples = []
        world.engine.hooks.subscribe(
            "knowledge_recorded",
            lambda time, average, minimum: samples.append((time, average, minimum)),
        )
        result = world.run()
        assert len(samples) == result.steps_simulated
        for __, average, minimum in samples:
            assert 0.0 <= minimum <= average <= 1.0


class TestRoutingHooks:
    def test_connectivity_recorded_every_step(self, gateway_line4):
        config = RoutingWorldConfig(
            population=3, total_steps=12, converged_after=6
        )
        world = RoutingWorld(gateway_line4, config, seed=2)
        samples = []
        world.engine.hooks.subscribe(
            "connectivity_recorded",
            lambda time, fraction: samples.append((time, fraction)),
        )
        result = world.run()
        assert [t for t, __ in samples] == result.times
        assert [f for __, f in samples] == result.connectivity
