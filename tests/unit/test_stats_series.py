"""Unit tests for run statistics and time-series utilities."""

import pytest

from repro.analysis.series import TimeSeries, average_series, converged_mean
from repro.analysis.stats import confidence_interval, summarize
from repro.errors import ExperimentError


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.count == 1
        assert summary.ci95 == (5.0, 5.0)

    def test_mean_std(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary.mean == pytest.approx(4.0)
        assert summary.std == pytest.approx(2.0)
        assert summary.minimum == 2.0
        assert summary.maximum == 6.0

    def test_ci_contains_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert low < 2.5 < high

    def test_ci_narrows_with_more_data(self):
        wide = summarize([0.0, 10.0] * 2)
        narrow = summarize([0.0, 10.0] * 50)
        assert (narrow.ci95[1] - narrow.ci95[0]) < (wide.ci95[1] - wide.ci95[0])

    def test_format(self):
        text = summarize([10.0, 20.0]).format("steps", digits=0)
        assert "steps" in text
        assert "[10..20]" in text


class TestTimeSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            TimeSeries([1, 2], [0.5])

    def test_value_at(self):
        series = TimeSeries([1, 2, 3], [0.1, 0.2, 0.3])
        assert series.value_at(2) == 0.2
        with pytest.raises(ExperimentError):
            series.value_at(9)

    def test_window(self):
        series = TimeSeries([1, 2, 3, 4], [0.1, 0.2, 0.3, 0.4])
        window = series.window(2, 3)
        assert window.times == [2, 3]
        assert window.values == [0.2, 0.3]

    def test_tail_mean(self):
        series = TimeSeries([1, 2, 3, 4], [0.0, 0.0, 0.4, 0.6])
        assert series.tail_mean(3) == pytest.approx(0.5)
        assert converged_mean(series, 3) == pytest.approx(0.5)

    def test_tail_mean_empty_rejected(self):
        with pytest.raises(ExperimentError):
            TimeSeries([1], [0.1]).tail_mean(5)


class TestAverageSeries:
    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            average_series([])

    def test_single_series_passthrough(self):
        series = TimeSeries([1, 2], [0.5, 1.0])
        averaged = average_series([series])
        assert averaged.times == [1, 2]
        assert averaged.values == [0.5, 1.0]

    def test_pointwise_mean(self):
        a = TimeSeries([1, 2], [0.0, 1.0])
        b = TimeSeries([1, 2], [1.0, 0.0])
        averaged = average_series([a, b])
        assert averaged.values == [0.5, 0.5]

    def test_short_series_carried_forward(self):
        # A run that finished early holds its final value, like a mapping
        # team sitting at knowledge 1.0 after finishing.
        a = TimeSeries([1, 2], [0.5, 1.0])
        b = TimeSeries([1, 2, 3, 4], [0.0, 0.0, 0.0, 0.0])
        averaged = average_series([a, b])
        assert averaged.times == [1, 2, 3, 4]
        assert averaged.values == [0.25, 0.5, 0.5, 0.5]
