"""Unit tests for the traffic plane, routers, and conservation ledger."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.channel import ChannelConfig, ChannelModel
from repro.net.manual import fixed_topology
from repro.rng import SeedSpawner
from repro.routing.table import RouteEntry, TableBank
from repro.traffic.payload import Payload, TrafficLedger
from repro.traffic.plane import TrafficConfig, TrafficPlane, TrafficReport, parse_traffic_spec
from repro.traffic.routers import ROUTERS, make_router


def full_mesh(node_count=5, gateways=(0,)):
    edges = [
        (a, b)
        for a in range(node_count)
        for b in range(node_count)
        if a != b
    ]
    return fixed_topology(node_count, edges, gateways=list(gateways))


def line_topology(node_count=4, gateways=(0,)):
    edges = []
    for a in range(node_count - 1):
        edges.extend([(a, a + 1), (a + 1, a)])
    return fixed_topology(node_count, edges, gateways=list(gateways))


def chain_tables(node_count=4, gateway=0):
    bank = TableBank(node_count)
    for node in range(1, node_count):
        bank.table(node).install(
            RouteEntry(gateway, node - 1, node, installed_at=1)
        )
    return bank


def build_plane(topology, tables=None, channel=None, **overrides):
    config = TrafficConfig(**overrides)
    return TrafficPlane(
        topology, config, SeedSpawner(5), channel=channel, tables=tables
    )


def run_plane(plane, steps):
    for now in range(steps):
        plane.step(now)
        assert plane.consistency_problems() == []
    return plane.report()


class TestLedger:
    def test_conservation_and_terminal_guards(self):
        ledger = TrafficLedger()
        payload = Payload(0, source=1, created_at=0, ttl=10)
        ledger.register(payload)
        assert ledger.conservation_error() is None
        ledger.deliver(0, now=4, hops=2)
        assert ledger.delivered == 1
        with pytest.raises(SimulationError):
            ledger.deliver(0, now=5, hops=2)
        with pytest.raises(SimulationError):
            ledger.expire(0)

    def test_latency_histogram_buckets(self):
        ledger = TrafficLedger()
        for pid, latency in enumerate((1, 3, 200, 1000)):
            ledger.register(Payload(pid, source=1, created_at=0, ttl=2000))
            ledger.deliver(pid, now=latency, hops=1)
        counts = ledger.latency_counts
        assert sum(counts) == 4
        assert counts[-1] == 1  # 1000 overflows the last bound (256)


class TestDeliveryAtZeroLoss:
    @pytest.mark.parametrize("router", ROUTERS)
    def test_full_mesh_delivers_everything(self, router):
        """Acceptance: p=0 on a static fully-connected graph => 100%."""
        topology = full_mesh()
        plane = build_plane(
            topology,
            tables=chain_tables(5),
            router=router,
            rate=1.0,
            payload_ttl=50,
        )
        report = run_plane(plane, 40)
        assert report.generated > 10
        # everything generated up to the second-to-last step had a full
        # step to make the single hop to the gateway
        assert report.delivered + report.buffered + report.in_flight == report.generated
        assert report.buffered + report.in_flight <= 2  # only the tail
        assert report.dropped == 0 and report.expired == 0
        assert report.mean_hops <= 1.0

    def test_store_and_forward_walks_the_chain(self):
        from repro.traffic.payload import PayloadCopy

        topology = line_topology(4)
        plane = build_plane(
            topology,
            tables=chain_tables(4),
            rate=0.0,
        )
        payload = Payload(0, source=3, created_at=0, ttl=30)
        plane.ledger.register(payload)
        plane._payloads[0] = payload
        plane.queue(3).offer(PayloadCopy(payload))
        for now in range(5):
            plane.step(now)
            assert plane.consistency_problems() == []
        report = plane.report()
        assert report.delivered == 1
        assert report.mean_hops == 3.0
        assert report.counters["custody_transfers"] == 2  # final hop delivers


class TestLossAndRetry:
    def test_total_loss_retransmits_then_abandons(self):
        topology = line_topology(4)
        channel = ChannelModel(topology, ChannelConfig(loss=1.0), seed=3)
        plane = build_plane(
            topology,
            tables=chain_tables(4),
            channel=channel,
            rate=0.5,
            payload_ttl=10,
            max_retransmit=2,
        )
        report = run_plane(plane, 30)
        assert report.generated > 0
        assert report.delivered == 0
        assert report.counters["retransmissions"] > 0
        assert report.counters["abandons"] > 0
        assert report.expired > 0  # TTL reaps what the channel blocks

    def test_partial_loss_still_delivers(self):
        topology = full_mesh()
        channel = ChannelModel(topology, ChannelConfig(loss=0.4), seed=3)
        plane = build_plane(
            topology,
            tables=chain_tables(5),
            channel=channel,
            rate=1.0,
            payload_ttl=60,
        )
        report = run_plane(plane, 60)
        assert report.delivered > 0
        assert report.counters["retransmissions"] > 0


class TestBufferPressure:
    def test_source_overflow_is_accounted(self):
        # no tables and no neighbors: payloads pile up at their sources
        topology = fixed_topology(3, [], gateways=[0])
        plane = build_plane(
            topology, router="epidemic", rate=3.0, queue_capacity=2, payload_ttl=500
        )
        report = run_plane(plane, 40)
        assert report.generated > 10
        assert report.dropped > 0
        assert report.counters["source_drops"] == report.dropped
        assert report.queues["rejected"] == report.counters["source_drops"]
        assert report.queues["peak"] <= 2

    def test_drop_oldest_sheds_via_eviction(self):
        topology = fixed_topology(3, [], gateways=[0])
        plane = build_plane(
            topology,
            router="epidemic",
            rate=3.0,
            queue_capacity=2,
            queue_policy="drop-oldest",
            payload_ttl=500,
        )
        report = run_plane(plane, 40)
        assert report.counters["overflow_drops"] > 0
        assert report.dropped == (
            report.counters["overflow_drops"] + report.counters["source_drops"]
        )


class TestCrashCustody:
    def test_custody_survives_crash_and_recovery(self):
        from repro.traffic.payload import PayloadCopy

        topology = line_topology(3)
        plane = build_plane(topology, tables=chain_tables(3), rate=0.0)
        payload = Payload(0, source=2, created_at=0, ttl=1000)
        plane.ledger.register(payload)
        plane._payloads[0] = payload
        plane.queue(2).offer(PayloadCopy(payload))
        topology.set_node_down(1)  # the only route to the gateway
        topology.recompute()
        for now in range(5):
            plane.step(now)
            assert plane.consistency_problems() == []
        assert plane.report().delivered == 0
        assert plane.report().buffered == 1  # custody held, not lost
        topology.set_node_up(1)
        topology.recompute()
        for now in range(5, 10):
            plane.step(now)
            assert plane.consistency_problems() == []
        assert plane.report().delivered == 1

    def test_expiry_purges_copies_on_down_nodes(self):
        from repro.traffic.payload import PayloadCopy

        topology = line_topology(3)
        plane = build_plane(topology, tables=chain_tables(3), rate=0.0, payload_ttl=3)
        payload = Payload(0, source=2, created_at=0, ttl=3)
        plane.ledger.register(payload)
        plane._payloads[0] = payload
        plane.queue(2).offer(PayloadCopy(payload))
        topology.set_node_down(2)
        topology.recompute()
        for now in range(6):
            plane.step(now)
            assert plane.consistency_problems() == []
        report = plane.report()
        assert report.expired == 1
        assert report.buffered == 0


class TestSprayAndWait:
    def test_ticket_budget_bounds_copies(self):
        topology = full_mesh(6, gateways=())  # no gateway: nothing delivers
        plane = build_plane(
            topology,
            router="spray-and-wait",
            rate=0.0,
            spray_copies=4,
            payload_ttl=1000,
        )
        from repro.traffic.payload import PayloadCopy

        payload = Payload(0, source=1, created_at=0, ttl=1000)
        plane.ledger.register(payload)
        plane._payloads[0] = payload
        plane.queue(1).offer(PayloadCopy(payload, tickets=4))
        for now in range(10):
            plane.step(now)
            assert plane.consistency_problems() == []
        # binary spray: at most spray_copies physical copies ever exist
        assert plane.ledger.copy_count(0) <= 4
        copies = [
            copy
            for __, queue in plane.sorted_queues()
            for copy in queue.copies()
        ]
        assert sum(copy.tickets for copy in copies) == 4


class TestRouterFactory:
    def test_unknown_router_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficConfig(router="flooding")

    def test_store_and_forward_requires_tables(self):
        with pytest.raises(ConfigurationError):
            build_plane(full_mesh(), tables=None)  # default router needs tables
        plane = build_plane(full_mesh(), tables=None, router="epidemic")
        with pytest.raises(ConfigurationError):
            make_router("store-and-forward", plane)


class TestReportAndSpec:
    def test_report_roundtrip(self):
        topology = full_mesh()
        plane = build_plane(topology, tables=chain_tables(5), rate=1.0)
        report = run_plane(plane, 20)
        assert TrafficReport.from_dict(report.to_dict()) == report
        assert TrafficReport.from_dict(None) is None

    def test_parse_bare_rate(self):
        config = parse_traffic_spec("0.75")
        assert config.rate == 0.75
        assert config.router == "store-and-forward"

    def test_parse_long_form(self):
        config = parse_traffic_spec(
            "profile=burst,burst=12,every=8,cap=32,policy=drop-oldest,"
            "ttl=40,router=epidemic,retries=4,backoff=2,fanout=3"
        )
        assert config.profile == "burst"
        assert config.burst_size == 12
        assert config.burst_every == 8
        assert config.queue_capacity == 32
        assert config.queue_policy == "drop-oldest"
        assert config.payload_ttl == 40
        assert config.router == "epidemic"
        assert config.max_retransmit == 4
        assert config.backoff_base == 2
        assert config.epidemic_fanout == 3

    @pytest.mark.parametrize(
        "spec", ["", "rate", "speed=1", "rate=fast", "router=flooding"]
    )
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ConfigurationError):
            parse_traffic_spec(spec)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TrafficConfig(rate=-1.0)
        with pytest.raises(ConfigurationError):
            TrafficConfig(queue_capacity=0)
        with pytest.raises(ConfigurationError):
            TrafficConfig(start=5, stop=5)


class TestDeterminism:
    @pytest.mark.parametrize("router", ROUTERS)
    def test_same_seed_same_report(self, router):
        def run():
            topology = full_mesh(6)
            channel = ChannelModel(topology, ChannelConfig(loss=0.3), seed=9)
            plane = build_plane(
                topology,
                tables=chain_tables(6),
                channel=channel,
                router=router,
                rate=1.0,
            )
            return run_plane(plane, 40)

        assert run() == run()
