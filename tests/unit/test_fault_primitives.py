"""Unit tests for the graceful-degradation primitives faults rely on."""

import random

import pytest

from repro.core.pheromone import PheromoneField
from repro.core.stigmergy import StigmergyField
from repro.errors import ConfigurationError, TopologyError
from repro.net.battery import Battery, NoDrain
from repro.routing.connectivity import connected_nodes, walk_to_gateway
from repro.routing.table import RouteEntry, TableBank


class TestTopologyFaultState:
    def test_down_node_loses_all_links(self, ring6):
        assert ring6.set_node_down(2) is True
        assert ring6.is_down(2)
        assert 2 in ring6.down_ids
        assert ring6.out_neighbors(2) == frozenset()
        assert all(2 not in ring6.out_neighbors(n) for n in ring6.node_ids)

    def test_down_then_up_restores_links(self, ring6):
        before = {n: ring6.out_neighbors(n) for n in ring6.node_ids}
        ring6.set_node_down(2)
        assert ring6.set_node_up(2) is True
        assert {n: ring6.out_neighbors(n) for n in ring6.node_ids} == before

    def test_down_and_up_are_idempotent(self, ring6):
        ring6.set_node_down(2)
        assert ring6.set_node_down(2) is False
        ring6.set_node_up(2)
        assert ring6.set_node_up(2) is False

    def test_blocked_edge_is_directed(self, ring6):
        ring6.block_edge(0, 1)
        assert 1 not in ring6.out_neighbors(0)
        assert 0 in ring6.out_neighbors(1)
        ring6.unblock_edge(0, 1)
        assert 1 in ring6.out_neighbors(0)

    def test_unknown_ids_rejected(self, ring6):
        with pytest.raises(TopologyError):
            ring6.set_node_down(99)
        with pytest.raises(TopologyError):
            ring6.block_edge(0, 99)

    def test_down_gateway_leaves_gateway_ids(self, gateway_line4):
        assert gateway_line4.gateway_ids == [0]
        gateway_line4.set_node_down(0)
        assert gateway_line4.gateway_ids == []
        assert gateway_line4.all_gateway_ids == [0]
        gateway_line4.set_node_up(0)
        assert gateway_line4.gateway_ids == [0]


class TestConnectivityWithFaults:
    def test_down_gateway_terminates_nothing(self, gateway_line4):
        tables = TableBank(4)
        tables.table(1).install(
            RouteEntry(gateway=0, next_hop=0, hops=1, installed_at=1)
        )
        assert walk_to_gateway(1, gateway_line4, tables, walk_ttl=8) == [1, 0]
        gateway_line4.set_node_down(0)
        assert walk_to_gateway(1, gateway_line4, tables, walk_ttl=8) is None

    def test_down_nodes_not_counted_connected(self, gateway_line4):
        tables = TableBank(4)
        gateway_line4.set_node_down(3)
        assert 3 not in connected_nodes(gateway_line4, tables, walk_ttl=8)


class TestTableInvalidation:
    def _bank(self):
        bank = TableBank(4)
        bank.table(1).install(RouteEntry(gateway=0, next_hop=2, hops=2, installed_at=1))
        bank.table(2).install(RouteEntry(gateway=0, next_hop=0, hops=1, installed_at=1))
        bank.table(3).install(RouteEntry(gateway=0, next_hop=1, hops=3, installed_at=1))
        return bank

    def test_drop_routes_via_next_hop_and_gateway(self):
        bank = self._bank()
        # Node 2 dies: 1's route goes through it; 2's own table is wiped.
        assert bank.invalidate_node(2) == 2
        assert len(bank.table(1)) == 0
        assert len(bank.table(2)) == 0
        assert len(bank.table(3)) == 1

    def test_dead_gateway_invalidates_every_route_toward_it(self):
        bank = self._bank()
        assert bank.invalidate_node(0) == 3
        assert bank.total_entries() == 0

    def test_corrupt_is_deterministic_per_seed(self):
        hops_before = []
        corrupted = []
        for __ in range(2):
            bank = self._bank()
            bank.table(1).corrupt(random.Random(42), [0, 1, 2, 3])
            entry = bank.table(1).entry_for(0)
            corrupted.append(entry.next_hop)
            hops_before.append(entry.hops)
        assert corrupted[0] == corrupted[1]
        assert hops_before[0] == hops_before[1]


class TestSubstrateClearing:
    def test_stigmergy_clear_board(self):
        field = StigmergyField(capacity=4, freshness=None)
        field.stamp(5, agent=1, target=6, time=3)
        field.stamp(5, agent=2, target=7, time=3)
        assert field.clear_board(5) == 2
        assert field.total_marks() == 0
        assert field.clear_board(5) == 0

    def test_pheromone_clear_node_removes_inbound_trails(self):
        field = PheromoneField(evaporation=0.0)
        field.deposit(1, toward=2, amount=1.0)
        field.deposit(3, toward=2, amount=1.0)
        field.deposit(3, toward=4, amount=1.0)
        removed = field.clear_node(2)
        assert removed == 2
        assert field.strength(3, 2) == pytest.approx(field.initial)
        assert field.strength(3, 4) > field.initial


class TestBatteryShock:
    def test_shock_drains_and_floors_at_zero(self):
        battery = Battery(NoDrain(), level=0.6)
        assert battery.shock(0.5) == pytest.approx(0.1)
        assert battery.shock(0.5) == 0.0
        assert battery.depleted

    def test_shock_amount_validated(self):
        battery = Battery(NoDrain())
        with pytest.raises(ConfigurationError):
            battery.shock(0.0)
        with pytest.raises(ConfigurationError):
            battery.shock(1.5)
