"""Unit tests for the lossy-channel model and its loss policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.channel import (
    GRAY_KINDS,
    BatteryLoss,
    ChannelConfig,
    ChannelModel,
    CompositeLoss,
    DistanceLoss,
    FixedLoss,
    parse_channel_spec,
    policy_from_config,
)
from repro.net.geometry import Point
from repro.net.manual import fixed_topology
from repro.net.node import Node
from repro.net.radio import FixedRange


def line3():
    return fixed_topology(3, [(0, 1), (1, 0), (1, 2), (2, 1)])


class _ZeroRange:
    """A radio whose effective range has collapsed entirely."""

    def current_range(self) -> float:
        return 0.0


class TestChannelConfig:
    def test_defaults_are_lossless(self):
        config = ChannelConfig()
        assert config.lossless

    def test_any_loss_term_breaks_losslessness(self):
        assert not ChannelConfig(loss=0.1).lossless
        assert not ChannelConfig(distance_factor=0.1).lossless
        assert not ChannelConfig(battery_factor=0.1).lossless

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": -0.1},
            {"loss": 1.5},
            {"distance_factor": 2.0},
            {"battery_factor": -1.0},
            {"distance_exponent": 0.0},
            {"hop_retries": -1},
            {"backoff_base": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChannelConfig(**kwargs)

    def test_frozen_and_hashable(self):
        config = ChannelConfig(loss=0.2)
        assert hash(config) == hash(ChannelConfig(loss=0.2))
        with pytest.raises(Exception):
            config.loss = 0.5


class TestPolicies:
    def test_fixed_loss_is_constant(self):
        topology = line3()
        policy = FixedLoss(0.3)
        a, b = topology.node(0), topology.node(1)
        assert policy.loss_probability(a, b) == 0.3
        assert policy.loss_probability(b, a) == 0.3

    def test_distance_loss_grows_toward_range_edge(self):
        topology = line3()
        source, destination = topology.node(0), topology.node(1)
        # FixedRange(1.0) with circle-layout nodes far apart: ratio caps at 1.
        policy = DistanceLoss(0.4, exponent=2.0)
        assert policy.loss_probability(source, destination) == pytest.approx(0.4)
        assert policy.loss_probability(source, source) == 0.0

    def test_distance_loss_scales_with_ratio(self):
        source = Node(0, Point(0.0, 0.0), FixedRange(10.0))
        destination = Node(1, Point(5.0, 0.0), FixedRange(10.0))
        policy = DistanceLoss(0.4, exponent=2.0)
        # half-way into range, squared: 0.4 * 0.25
        assert policy.loss_probability(source, destination) == pytest.approx(0.1)

    def test_distance_loss_total_when_range_collapsed(self):
        topology = line3()
        source, destination = topology.node(0), topology.node(1)
        source.radio = _ZeroRange()
        policy = DistanceLoss(0.4)
        assert policy.loss_probability(source, destination) == 1.0

    def test_battery_loss_tracks_depletion(self):
        topology = line3()
        source, destination = topology.node(0), topology.node(1)
        policy = BatteryLoss(0.5)
        assert policy.loss_probability(source, destination) == 0.0
        source.battery.shock(0.6)
        assert policy.loss_probability(source, destination) == pytest.approx(0.3)

    def test_composite_combines_independent_failures(self):
        topology = line3()
        a, b = topology.node(0), topology.node(1)
        policy = CompositeLoss([FixedLoss(0.5), FixedLoss(0.5)])
        assert policy.loss_probability(a, b) == pytest.approx(0.75)

    def test_policy_from_config_picks_terms(self):
        assert isinstance(policy_from_config(ChannelConfig()), FixedLoss)
        assert isinstance(policy_from_config(ChannelConfig(loss=0.2)), FixedLoss)
        assert isinstance(
            policy_from_config(ChannelConfig(distance_factor=0.2)), DistanceLoss
        )
        assert isinstance(
            policy_from_config(ChannelConfig(loss=0.2, battery_factor=0.1)),
            CompositeLoss,
        )


class TestChannelModel:
    def test_lossless_channel_always_delivers(self):
        channel = ChannelModel(line3(), ChannelConfig(), seed=7)
        assert all(
            channel.attempt(0, 1, now, f"hop:{now}") for now in range(50)
        )
        assert channel.stats.losses == 0
        assert channel.stats.attempts == 50

    def test_total_loss_never_delivers(self):
        channel = ChannelModel(line3(), ChannelConfig(loss=1.0), seed=7)
        assert not any(
            channel.attempt(0, 1, now, f"hop:{now}") for now in range(20)
        )
        assert channel.stats.loss_rate == 1.0

    def test_outcome_is_a_pure_function_of_time_and_key(self):
        first = ChannelModel(line3(), ChannelConfig(loss=0.5), seed=11)
        second = ChannelModel(line3(), ChannelConfig(loss=0.5), seed=11)
        outcomes_first = [
            first.attempt(0, 1, now, f"hop:{agent}")
            for now in range(10)
            for agent in range(5)
        ]
        # Query in a scrambled order: outcomes must match pointwise.
        outcomes_second = {
            (now, agent): second.attempt(0, 1, now, f"hop:{agent}")
            for agent in reversed(range(5))
            for now in reversed(range(10))
        }
        reordered = [
            outcomes_second[(now, agent)] for now in range(10) for agent in range(5)
        ]
        assert outcomes_first == reordered

    def test_different_seeds_differ(self):
        a = ChannelModel(line3(), ChannelConfig(loss=0.5), seed=1)
        b = ChannelModel(line3(), ChannelConfig(loss=0.5), seed=2)
        outcomes_a = [a.attempt(0, 1, now, "hop:0") for now in range(64)]
        outcomes_b = [b.attempt(0, 1, now, "hop:0") for now in range(64)]
        assert outcomes_a != outcomes_b

    def test_moderate_loss_rate_is_roughly_respected(self):
        channel = ChannelModel(line3(), ChannelConfig(loss=0.3), seed=5)
        outcomes = [channel.attempt(0, 1, now, "hop:0") for now in range(2000)]
        observed = 1.0 - sum(outcomes) / len(outcomes)
        assert 0.25 < observed < 0.35

    def test_burst_stacks_on_policy_and_clears(self):
        channel = ChannelModel(line3(), ChannelConfig(loss=0.2), seed=5)
        assert channel.set_burst(1, 1.0)
        # Bursts affect the *source* of an attempt.
        assert channel.loss_probability(1, 0) == 1.0
        assert channel.loss_probability(0, 1) == pytest.approx(0.2)
        assert not channel.set_burst(1, 1.0)  # idempotent re-apply
        assert channel.clear_burst(1)
        assert not channel.clear_burst(1)
        assert channel.loss_probability(1, 0) == pytest.approx(0.2)

    def test_burst_on_lossless_channel_loses(self):
        channel = ChannelModel(line3(), ChannelConfig(), seed=5)
        channel.set_burst(0, 1.0)
        assert not channel.attempt(0, 1, 3, "hop:0")
        assert channel.attempt(1, 2, 3, "hop:1")

    def test_burst_validation(self):
        channel = ChannelModel(line3(), ChannelConfig(), seed=5)
        with pytest.raises(ConfigurationError):
            channel.set_burst(0, 0.0)
        with pytest.raises(ConfigurationError):
            channel.set_burst(0, 1.5)

    def test_losses_tallied_by_key_kind(self):
        channel = ChannelModel(line3(), ChannelConfig(loss=1.0), seed=5)
        channel.attempt(0, 1, 1, "hop:0")
        channel.attempt(0, 1, 1, "meet:0")
        channel.attempt(0, 1, 2, "hop:1")
        assert channel.stats.losses_by_kind == {"hop": 2, "meet": 1}


class TestParseChannelSpec:
    def test_bare_number_is_fixed_loss(self):
        config = parse_channel_spec("0.25")
        assert config == ChannelConfig(loss=0.25)

    def test_long_form(self):
        config = parse_channel_spec(
            "fixed=0.1,distance=0.3,exp=3,battery=0.2,retries=5,backoff=2"
        )
        assert config == ChannelConfig(
            loss=0.1,
            distance_factor=0.3,
            distance_exponent=3.0,
            battery_factor=0.2,
            hop_retries=5,
            backoff_base=2,
        )

    @pytest.mark.parametrize("spec", ["", "nonsense", "p=0.2", "fixed=abc"])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ConfigurationError):
            parse_channel_spec(spec)

    def test_out_of_range_value_raises(self):
        with pytest.raises(ConfigurationError):
            parse_channel_spec("1.2")


class TestLossPolicyEdgeCases:
    def test_composite_clamps_at_certain_loss(self):
        topology = line3()
        a, b = topology.node(0), topology.node(1)
        policy = CompositeLoss([FixedLoss(1.0), FixedLoss(0.5)])
        assert policy.loss_probability(a, b) == pytest.approx(1.0)

    def test_composite_of_nothing_is_lossless(self):
        topology = line3()
        a, b = topology.node(0), topology.node(1)
        assert CompositeLoss([]).loss_probability(a, b) == 0.0

    def test_distance_loss_zero_distance_is_safe(self):
        # Two nodes at the same point: a target at the sender's feet
        # never loses to distance, whatever the exponent.
        source = Node(0, Point(3.0, 4.0), FixedRange(10.0))
        destination = Node(1, Point(3.0, 4.0), FixedRange(10.0))
        for exponent in (0.5, 1.0, 2.0):
            policy = DistanceLoss(0.9, exponent=exponent)
            assert policy.loss_probability(source, destination) == 0.0

    def test_battery_loss_total_factor_on_dead_battery(self):
        topology = line3()
        source, destination = topology.node(0), topology.node(1)
        source.battery.shock(1.0)
        assert source.battery.level == 0.0
        assert BatteryLoss(1.0).loss_probability(source, destination) == 1.0
        assert BatteryLoss(0.4).loss_probability(
            source, destination
        ) == pytest.approx(0.4)


class TestGrayFailures:
    def test_rate_validation(self):
        channel = ChannelModel(line3(), ChannelConfig(), seed=7)
        for rate in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                channel.set_grayfail(1, rate)

    def test_set_and_clear_report_state_changes(self):
        channel = ChannelModel(line3(), ChannelConfig(), seed=7)
        assert channel.set_grayfail(1, 0.9)
        assert not channel.set_grayfail(1, 0.9)  # idempotent re-apply
        assert channel.set_grayfail(1, 0.5)  # rate change counts
        assert channel.active_grayfails == {1: 0.5}
        assert channel.clear_grayfail(1)
        assert not channel.clear_grayfail(1)
        assert channel.active_grayfails == {}

    def test_gray_composes_on_the_receiving_side(self):
        channel = ChannelModel(line3(), ChannelConfig(loss=0.5), seed=7)
        channel.set_grayfail(1, 0.5)
        # Independent terms: 1 - 0.5 * 0.5 toward the gray node...
        assert channel.loss_probability(0, 1, "pay") == pytest.approx(0.75)
        # ...but only the base loss when the gray node is the sender.
        assert channel.loss_probability(1, 0, "pay") == pytest.approx(0.5)

    def test_gray_only_affects_data_plane_kinds(self):
        channel = ChannelModel(line3(), ChannelConfig(), seed=7)
        channel.set_grayfail(1, 1.0)
        for kind in sorted(GRAY_KINDS):
            assert channel.loss_probability(0, 1, kind) == 1.0
        # Control plane — agent hops, meetings, acks — sails through:
        # that selective honesty is what makes the failure gray.
        for kind in ("hop", "meet", "payack", ""):
            assert channel.loss_probability(0, 1, kind) == 0.0

    def test_gray_node_swallows_payload_attempts(self):
        channel = ChannelModel(line3(), ChannelConfig(), seed=7)
        channel.set_grayfail(1, 1.0)
        assert not any(
            channel.attempt(0, 1, now, f"pay:{now}") for now in range(20)
        )
        assert all(
            channel.attempt(0, 1, now, f"hop:{now}") for now in range(20)
        )
        assert channel.stats.losses_by_kind == {"pay": 20}

    def test_gray_defeats_the_lossless_fast_path(self):
        # A lossless config normally short-circuits attempt(); an active
        # gray failure must still be consulted.
        channel = ChannelModel(line3(), ChannelConfig(), seed=7)
        assert channel.attempt(0, 1, 1, "pay:a")
        channel.set_grayfail(1, 1.0)
        assert not channel.attempt(0, 1, 2, "pay:b")
        channel.clear_grayfail(1)
        assert channel.attempt(0, 1, 3, "pay:c")

    def test_attempts_are_deterministic_per_seed(self):
        def outcomes(seed):
            channel = ChannelModel(line3(), ChannelConfig(), seed=seed)
            channel.set_grayfail(1, 0.6)
            return [channel.attempt(0, 1, now, f"pay:{now}") for now in range(30)]

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)
