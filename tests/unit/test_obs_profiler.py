"""Unit: phase profiler accounting, merging, and percentile summaries."""

import pytest

from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.obs.collector import ObsConfig
from repro.obs.profiler import (
    SAMPLE_CAP,
    PhaseProfiler,
    merge_profiles,
    profile_table,
    summarize_profile,
)
from repro.routing.world import RoutingWorld, RoutingWorldConfig

ROUTING_NET = GeneratorConfig(
    node_count=30,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=2,
    mobile_fraction=0.5,
)


class TestPhaseProfiler:
    def test_add_accumulates(self):
        profiler = PhaseProfiler()
        profiler.add("move", 0.5)
        profiler.add("move", 1.5)
        assert profiler.count("move") == 2
        assert profiler.total("move") == pytest.approx(2.0)
        assert profiler.total("absent") == 0.0
        assert profiler.phases() == ["move"]

    def test_lap_partitions_an_interval(self):
        profiler = PhaseProfiler()
        start = 10.0  # laps only compare against perf_counter-now
        mark = profiler.lap("a", start)
        end = profiler.lap("b", mark)
        assert profiler.total("a") + profiler.total("b") == pytest.approx(
            end - start, rel=1e-9
        )

    def test_sample_cap_bounds_memory(self):
        profiler = PhaseProfiler()
        for __ in range(SAMPLE_CAP + 10):
            profiler.add("x", 0.001)
        stats = profiler.as_dict()["x"]
        assert stats["count"] == SAMPLE_CAP + 10
        assert len(stats["samples"]) == SAMPLE_CAP

    def test_as_dict_sorted_and_complete(self):
        profiler = PhaseProfiler()
        profiler.add("b", 2.0)
        profiler.add("a", 1.0)
        payload = profiler.as_dict()
        assert list(payload) == ["a", "b"]
        assert payload["b"] == {
            "count": 1,
            "total": 2.0,
            "min": 2.0,
            "max": 2.0,
            "samples": [2.0],
        }


class TestMergeAndSummary:
    def test_merge_sums_counts_and_extremises(self):
        one, two = PhaseProfiler(), PhaseProfiler()
        one.add("move", 1.0)
        two.add("move", 3.0)
        two.add("meet", 0.5)
        merged = merge_profiles([one.as_dict(), None, two.as_dict()])
        assert merged["move"]["count"] == 2
        assert merged["move"]["total"] == pytest.approx(4.0)
        assert merged["move"]["min"] == 1.0 and merged["move"]["max"] == 3.0
        assert merged["meet"]["count"] == 1

    def test_summary_percentiles_are_ordered(self):
        profiler = PhaseProfiler()
        for value in range(1, 101):
            profiler.add("x", float(value))
        summary = summarize_profile(profiler.as_dict())["x"]
        assert summary["min"] <= summary["p50"] <= summary["p90"]
        assert summary["p90"] <= summary["p99"] <= summary["max"]
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["sampled"] == 100

    def test_table_renders_every_phase(self):
        profiler = PhaseProfiler()
        profiler.add("alpha", 0.001)
        profiler.add("beta", 0.002)
        table = profile_table(summarize_profile(profiler.as_dict()))
        assert "alpha" in table and "beta" in table
        assert "p99_us" in table.splitlines()[0]


class TestWorldPhaseAccounting:
    def test_world_phases_sum_to_step_total(self):
        """Consecutive laps partition each step, so phases sum to 'step'."""
        topology = NetworkGenerator(ROUTING_NET, 5).generate_manet()
        config = RoutingWorldConfig(
            population=8,
            total_steps=25,
            converged_after=0,
            obs=ObsConfig(profile=True),
        )
        world = RoutingWorld(topology, config, 7)
        result = world.run()
        profile = result.obs.profile
        world_phases = ("decay", "decide", "meet", "move", "record")
        phase_sum = sum(profile[name]["total"] for name in world_phases)
        step_total = profile["step"]["total"]
        assert phase_sum == pytest.approx(step_total, rel=1e-6)
        assert all(profile[name]["count"] == 25 for name in world_phases)
        # Hook fires are timed too — that is where invariant checking and
        # fault injection accrue — but outside the world-phase partition.
        assert profile["step"]["count"] == 25
        assert any(name.startswith("hook:") for name in profile)
