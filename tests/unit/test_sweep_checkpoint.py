"""SweepCheckpoint journal recovery: tail corruption must never lose
the completed prefix.

The runner-level resume behaviour is covered by the hardening
integration tests; these exercise the journal class directly so each
corruption mode (truncated write, binary garbage, wrong JSON shape) is
pinned down without paying for a simulation.
"""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.persistence import SweepCheckpoint


def make_checkpoint(path, entries=()):
    checkpoint = SweepCheckpoint(path, "routing", "cafebabe")
    for name, run_index, payload in entries:
        checkpoint.record(name, run_index, payload)
    return checkpoint


ENTRIES = [
    ("a", 0, {"value": 1}),
    ("a", 1, {"value": 2}),
    ("b", 0, {"value": 3}),
]


class TestTailCorruptionRecovery:
    def test_truncated_final_line_dropped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        make_checkpoint(path, ENTRIES)
        text = path.read_text()
        path.write_text(text[:-15])  # kill landed mid-write of the last entry

        resumed = SweepCheckpoint(path, "routing", "cafebabe")
        assert ("a", 0) in resumed
        assert ("a", 1) in resumed
        assert ("b", 0) not in resumed
        assert len(resumed) == 2
        assert resumed.result_payload("a", 1) == {"value": 2}

    def test_garbage_final_line_dropped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        make_checkpoint(path, ENTRIES)
        with path.open("a") as handle:
            handle.write("\x00\xff not json at all")

        resumed = SweepCheckpoint(path, "routing", "cafebabe")
        assert len(resumed) == 3
        assert resumed.result_payload("b", 0) == {"value": 3}

    def test_non_dict_json_line_dropped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        make_checkpoint(path, ENTRIES[:1])
        with path.open("a") as handle:
            handle.write(json.dumps([1, 2, 3]) + "\n")

        resumed = SweepCheckpoint(path, "routing", "cafebabe")
        assert len(resumed) == 1

    def test_recovery_then_rerecord_appends_cleanly(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        make_checkpoint(path, ENTRIES)
        path.write_text(path.read_text()[:-15])

        resumed = SweepCheckpoint(path, "routing", "cafebabe")
        resumed.record("b", 0, {"value": 30})  # the torn task, re-run
        assert resumed.result_payload("b", 0) == {"value": 30}

        # a third open sees a fully healthy journal again
        final = SweepCheckpoint(path, "routing", "cafebabe")
        assert len(final) == 3
        assert final.result_payload("b", 0) == {"value": 30}

    def test_record_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        checkpoint = make_checkpoint(path, ENTRIES[:1])
        checkpoint.record("a", 0, {"value": 999})  # duplicate: ignored
        assert checkpoint.result_payload("a", 0) == {"value": 1}
        assert len(path.read_text().splitlines()) == 2  # header + one entry


class TestHeaderCorruption:
    def test_empty_journal_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text("")
        with pytest.raises(ExperimentError, match="empty"):
            SweepCheckpoint(path, "routing", "cafebabe")

    def test_torn_header_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        make_checkpoint(path, ENTRIES)
        lines = path.read_text().splitlines()
        path.write_text(lines[0][: len(lines[0]) // 2] + "\n" + "\n".join(lines[1:]))
        with pytest.raises(ExperimentError, match="unsupported header"):
            SweepCheckpoint(path, "routing", "cafebabe")
