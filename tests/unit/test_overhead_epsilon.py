"""Unit tests for overhead accounting and epsilon-randomized agents."""

import random

import pytest

from repro.core.mapping_agents import ConscientiousAgent, make_mapping_agent
from repro.core.overhead import OverheadMeter, aggregate_overheads
from repro.core.stigmergy import StigmergyField
from repro.errors import ConfigurationError
from repro.mapping.world import MappingWorldConfig, run_mapping


class TestOverheadMeter:
    def test_starts_zero(self):
        meter = OverheadMeter()
        assert meter.as_dict() == {name: 0 for name in meter.as_dict()}

    def test_merge(self):
        a = OverheadMeter(decisions=2, candidates_examined=10)
        b = OverheadMeter(decisions=3, meetings=1)
        merged = a.merged_with(b)
        assert merged.decisions == 5
        assert merged.candidates_examined == 10
        assert merged.meetings == 1

    def test_per_decision(self):
        meter = OverheadMeter(decisions=4, candidates_examined=12)
        assert meter.per_decision()["candidates_examined"] == pytest.approx(3.0)

    def test_per_decision_zero_safe(self):
        assert OverheadMeter().per_decision()["candidates_examined"] == 0.0

    def test_aggregate(self):
        meters = [OverheadMeter(decisions=1) for __ in range(5)]
        assert aggregate_overheads(meters).decisions == 5


class TestAgentCounting:
    def test_decisions_and_candidates_counted(self):
        agent = ConscientiousAgent(0, 0, random.Random(1))
        agent.choose_next([1, 2, 3], time=1)
        agent.choose_next([4], time=2)
        assert agent.overhead.decisions == 2
        assert agent.overhead.candidates_examined == 4

    def test_stranded_agent_counts_nothing(self):
        agent = ConscientiousAgent(0, 0, random.Random(1))
        agent.choose_next([], time=1)
        assert agent.overhead.decisions == 0

    def test_stigmergic_ops_counted(self):
        field = StigmergyField()
        agent = ConscientiousAgent(0, 0, random.Random(1), stigmergic=True)
        target = agent.choose_next([1, 2], time=1, field=field)
        agent.leave_footprint(target, time=1, field=field)
        assert agent.overhead.footprint_lookups == 1
        assert agent.overhead.footprints_stamped == 1

    def test_plain_agent_has_no_board_ops(self):
        field = StigmergyField()
        agent = ConscientiousAgent(0, 0, random.Random(1), stigmergic=False)
        target = agent.choose_next([1, 2], time=1, field=field)
        agent.leave_footprint(target, time=1, field=field)
        assert agent.overhead.footprint_lookups == 0
        assert agent.overhead.footprints_stamped == 0


class TestWorldOverheadAggregation:
    def test_mapping_result_carries_overhead(self, small_static_network):
        config = MappingWorldConfig(population=4, max_steps=4000)
        result = run_mapping(small_static_network, config, seed=3)
        assert result.overhead["candidates_examined"] > 0
        assert result.overhead["footprint_lookups"] == 0.0

    def test_stigmergic_run_has_board_ops(self, small_static_network):
        config = MappingWorldConfig(population=4, stigmergic=True, max_steps=4000)
        result = run_mapping(small_static_network, config, seed=3)
        assert result.overhead["footprint_lookups"] == pytest.approx(1.0)
        assert result.overhead["footprints_stamped"] == pytest.approx(1.0)


class TestEpsilon:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConscientiousAgent(0, 0, random.Random(1), epsilon=1.5)
        with pytest.raises(ConfigurationError):
            MappingWorldConfig(epsilon=-0.1)

    def test_factory_passes_epsilon(self):
        agent = make_mapping_agent(
            "super-conscientious", 0, 0, random.Random(1), epsilon=0.2
        )
        assert agent.epsilon == 0.2

    def test_epsilon_zero_is_pure_policy(self):
        agent = ConscientiousAgent(0, 0, random.Random(1), epsilon=0.0)
        agent.knowledge.observe_node(1, [], time=5)
        picks = {agent.choose_next([1, 2], time=6) for __ in range(30)}
        assert picks == {2}

    def test_epsilon_one_is_uniform(self):
        agent = ConscientiousAgent(0, 0, random.Random(1), epsilon=1.0)
        agent.knowledge.observe_node(1, [], time=5)
        picks = {agent.choose_next([1, 2], time=6) for __ in range(60)}
        assert picks == {1, 2}

    def test_intermediate_epsilon_mixes(self):
        agent = ConscientiousAgent(0, 0, random.Random(7), epsilon=0.5)
        agent.knowledge.observe_node(1, [], time=5)
        picks = [agent.choose_next([1, 2], time=6) for __ in range(200)]
        # Policy always says 2; epsilon moves ~25% of picks to node 1.
        assert 20 < picks.count(1) < 90
