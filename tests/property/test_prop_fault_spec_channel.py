"""Property tests: fault-spec round-trips and lossy meeting exchanges.

Two contracts the robustness layers promise:

* the ``--faults`` spec DSL is a faithful serialisation — any plan the
  builders can express survives ``describe() -> parse_fault_plan``
  unchanged (including the loss-burst kinds and their amounts), and
* meeting exchanges stay order-independent even when a lossy channel
  drops payloads: reception draws are keyed by the receiving agent, so
  shuffling the iteration order cannot change anyone's outcome.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comms import exchange_mapping_knowledge, exchange_routing_knowledge
from repro.core.mapping_agents import ConscientiousAgent
from repro.core.routing_agents import OldestNodeAgent
from repro.faults.plan import AGENT_POLICIES, FaultEvent, FaultPlan, parse_fault_plan
from repro.net.channel import ChannelConfig, ChannelModel
from repro.net.manual import fixed_topology

times = st.integers(min_value=1, max_value=200)
nodes = st.integers(min_value=0, max_value=30)
#: hundredths, so the spec's ``:g`` float formatting round-trips exactly.
amounts = st.integers(min_value=1, max_value=100).map(lambda n: n / 100)

plain_node_events = st.builds(
    FaultEvent,
    time=times,
    kind=st.sampled_from(["crash", "recover", "wipe", "corrupt", "lossclear"]),
    target=st.tuples(nodes),
    gateway_relative=st.booleans(),
)
amount_events = st.builds(
    FaultEvent,
    time=times,
    kind=st.sampled_from(["shock", "lossburst"]),
    target=st.tuples(nodes),
    amount=amounts,
    gateway_relative=st.booleans(),
)
edge_events = st.builds(
    FaultEvent,
    time=times,
    kind=st.sampled_from(["blackout", "restore"]),
    target=st.tuples(nodes, nodes),
)
kill_events = st.builds(
    FaultEvent, time=times, kind=st.just("kill"), target=st.tuples(nodes)
)
events = st.one_of(plain_node_events, amount_events, edge_events, kill_events)
plans = st.builds(
    FaultPlan,
    events=st.lists(events, max_size=12).map(tuple),
    agent_policy=st.sampled_from(sorted(AGENT_POLICIES)),
)


class TestFaultSpecRoundTrip:
    @given(plans)
    @settings(max_examples=150)
    def test_describe_then_parse_is_identity(self, plan):
        assert parse_fault_plan(plan.describe()) == plan

    @given(st.lists(events, min_size=1, max_size=12))
    @settings(max_examples=100)
    def test_event_specs_round_trip_individually(self, batch):
        spec = ";".join(event.describe() for event in batch)
        parsed = parse_fault_plan(spec)
        assert sorted(parsed.events, key=lambda e: (e.time, e.kind, e.target)) == sorted(
            batch, key=lambda e: (e.time, e.kind, e.target)
        )


def _shuffled(items, order_seed):
    shuffled = list(items)
    random.Random(order_seed).shuffle(shuffled)
    return shuffled


def _lossy_channel(seed):
    topology = fixed_topology(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
    return ChannelModel(topology, ChannelConfig(loss=0.5), seed=seed)


class TestLossyMeetingOrderIndependence:
    @given(
        population=st.integers(min_value=2, max_value=6),
        channel_seed=st.integers(min_value=0, max_value=2**32),
        order_seed=st.integers(min_value=0, max_value=2**32),
        now=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60)
    def test_mapping_exchange(self, population, channel_seed, order_seed, now):
        def build():
            agents = []
            for i in range(population):
                agent = ConscientiousAgent(i, 1, random.Random(i))
                agent.knowledge.observe_node(i, [i + 10], time=i + 1)
                agent.location = 1
                agents.append(agent)
            return agents

        ordered = build()
        exchange_mapping_knowledge(
            ordered, channel=_lossy_channel(channel_seed), now=now
        )
        shuffled = _shuffled(build(), order_seed)
        exchange_mapping_knowledge(
            shuffled, channel=_lossy_channel(channel_seed), now=now
        )
        by_id = {agent.agent_id: agent for agent in shuffled}
        for agent in ordered:
            twin = by_id[agent.agent_id]
            assert agent.knowledge.all_edges == twin.knowledge.all_edges
            assert agent.overhead.payloads_lost == twin.overhead.payloads_lost
            assert agent.overhead.items_received == twin.overhead.items_received

    @given(
        population=st.integers(min_value=2, max_value=6),
        channel_seed=st.integers(min_value=0, max_value=2**32),
        order_seed=st.integers(min_value=0, max_value=2**32),
        now=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60)
    def test_routing_exchange(self, population, channel_seed, order_seed, now):
        def build():
            agents = []
            for i in range(population):
                agent = OldestNodeAgent(
                    i, 1, random.Random(i), history_size=8, visiting=True
                )
                agent.history.record(i + 2, time=i + 1)
                agent.location = 1
                agents.append(agent)
            return agents

        ordered = build()
        exchange_routing_knowledge(
            ordered, channel=_lossy_channel(channel_seed), now=now
        )
        shuffled = _shuffled(build(), order_seed)
        exchange_routing_knowledge(
            shuffled, channel=_lossy_channel(channel_seed), now=now
        )
        by_id = {agent.agent_id: agent for agent in shuffled}
        for agent in ordered:
            twin = by_id[agent.agent_id]
            assert agent.history.snapshot() == twin.history.snapshot()
            assert agent.tracks == twin.tracks
            assert agent.overhead.payloads_lost == twin.overhead.payloads_lost
