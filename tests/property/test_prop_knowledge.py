"""Property tests: knowledge stores are monotone and merge-safe."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knowledge import TopologyKnowledge
from repro.types import NEVER

nodes = st.integers(min_value=0, max_value=20)
times = st.integers(min_value=0, max_value=1000)

observations = st.lists(
    st.tuples(nodes, st.lists(nodes, max_size=5), times), max_size=30
)


def build(obs):
    knowledge = TopologyKnowledge()
    for node, neighbors, time in obs:
        knowledge.observe_node(node, neighbors, time)
    return knowledge


@given(observations)
@settings(max_examples=100)
def test_edge_count_monotone_under_observation(obs):
    knowledge = TopologyKnowledge()
    previous = 0
    for node, neighbors, time in obs:
        knowledge.observe_node(node, neighbors, time)
        assert knowledge.known_edge_count >= previous
        previous = knowledge.known_edge_count


@given(observations, observations)
@settings(max_examples=100)
def test_absorb_is_superset_union(obs_a, obs_b):
    a = build(obs_a)
    b = build(obs_b)
    a.absorb(b.shareable_edges(), b.shareable_visits())
    assert a.all_edges >= b.all_edges
    assert a.all_edges >= a.first_hand_edges


@given(observations, observations)
@settings(max_examples=100)
def test_absorb_idempotent(obs_a, obs_b):
    a = build(obs_a)
    b = build(obs_b)
    a.absorb(b.shareable_edges(), b.shareable_visits())
    edges_once = a.all_edges
    visits_once = {n: a.last_combined_visit(n) for n in range(21)}
    a.absorb(b.shareable_edges(), b.shareable_visits())
    assert a.all_edges == edges_once
    assert {n: a.last_combined_visit(n) for n in range(21)} == visits_once


@given(observations)
@settings(max_examples=100)
def test_combined_visit_never_older_than_first_hand(obs):
    knowledge = build(obs)
    for node in range(21):
        assert knowledge.last_combined_visit(node) >= knowledge.last_first_hand_visit(node)


@given(observations)
@settings(max_examples=100)
def test_completeness_bounds(obs):
    knowledge = build(obs)
    for total in (0, 1, 10, 1000):
        fraction = knowledge.completeness(total)
        assert 0.0 <= fraction <= 1.0


@given(observations, observations, observations)
@settings(max_examples=60)
def test_absorb_commutative_on_edges(obs_a, obs_b, obs_c):
    base_a = build(obs_a)
    base_b = build(obs_a)
    b = build(obs_b)
    c = build(obs_c)
    base_a.absorb(b.shareable_edges(), b.shareable_visits())
    base_a.absorb(c.shareable_edges(), c.shareable_visits())
    base_b.absorb(c.shareable_edges(), c.shareable_visits())
    base_b.absorb(b.shareable_edges(), b.shareable_visits())
    assert base_a.all_edges == base_b.all_edges
    for node in range(21):
        assert base_a.last_combined_visit(node) == base_b.last_combined_visit(node)


@given(observations)
@settings(max_examples=50)
def test_never_for_unvisited(obs):
    knowledge = build(obs)
    visited = {node for node, __, __ in obs}
    for node in range(21):
        if node not in visited:
            assert knowledge.last_first_hand_visit(node) == NEVER
