"""Property tests: graph utilities cross-checked against networkx."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.graphutils import (
    bfs_hops,
    edge_count,
    is_strongly_connected,
    reachable_from,
    strongly_connected_components,
)


@st.composite
def digraphs(draw, max_nodes=12):
    """A random adjacency dict on 1..max_nodes nodes."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    adjacency = {i: set() for i in range(n)}
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=n * 3,
        )
    )
    for a, b in edges:
        if a != b:
            adjacency[a].add(b)
    return adjacency


def to_nx(adjacency):
    graph = nx.DiGraph()
    graph.add_nodes_from(adjacency)
    for node, successors in adjacency.items():
        graph.add_edges_from((node, s) for s in successors)
    return graph


@given(digraphs())
@settings(max_examples=150)
def test_strong_connectivity_matches_networkx(adjacency):
    assert is_strongly_connected(adjacency) == nx.is_strongly_connected(to_nx(adjacency))


@given(digraphs())
@settings(max_examples=150)
def test_scc_matches_networkx(adjacency):
    ours = sorted(sorted(c) for c in strongly_connected_components(adjacency))
    theirs = sorted(sorted(c) for c in nx.strongly_connected_components(to_nx(adjacency)))
    assert ours == theirs


@given(digraphs(), st.integers(min_value=0, max_value=11))
@settings(max_examples=150)
def test_reachable_matches_networkx(adjacency, start):
    if start not in adjacency:
        start = 0
    ours = reachable_from(adjacency, start)
    theirs = set(nx.descendants(to_nx(adjacency), start)) | {start}
    assert ours == theirs


@given(digraphs(), st.integers(min_value=0, max_value=11))
@settings(max_examples=150)
def test_bfs_hops_matches_networkx(adjacency, start):
    if start not in adjacency:
        start = 0
    ours = bfs_hops(adjacency, start)
    theirs = nx.single_source_shortest_path_length(to_nx(adjacency), start)
    assert ours == dict(theirs)


@given(digraphs())
@settings(max_examples=100)
def test_edge_count_matches_networkx(adjacency):
    assert edge_count(adjacency) == to_nx(adjacency).number_of_edges()


@given(digraphs())
@settings(max_examples=100)
def test_scc_partition_property(adjacency):
    components = strongly_connected_components(adjacency)
    all_nodes = [n for c in components for n in c]
    assert sorted(all_nodes) == sorted(adjacency)  # partition, no repeats
