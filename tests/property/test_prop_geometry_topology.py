"""Property tests: geometry metrics and topology recomputation."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.geometry import Arena, Point
from repro.net.mobility import RandomVelocity, RandomWaypoint
from repro.net.node import Node
from repro.net.radio import HeterogeneousRange
from repro.net.topology import Topology

coords = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestMetricProperties:
    @given(points, points)
    @settings(max_examples=100)
    def test_symmetry(self, a, b):
        assert math.isclose(a.distance_to(b), b.distance_to(a), rel_tol=1e-9)

    @given(points, points, points)
    @settings(max_examples=100)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points)
    @settings(max_examples=50)
    def test_identity(self, a):
        assert a.distance_to(a) == 0.0

    @given(points, points)
    @settings(max_examples=100)
    def test_squared_consistency(self, a, b):
        assert math.isclose(
            a.distance_squared_to(b), a.distance_to(b) ** 2, rel_tol=1e-9
        )


class TestArenaProperties:
    @given(points)
    @settings(max_examples=100)
    def test_clamp_is_inside_and_idempotent(self, p):
        arena = Arena(100, 60)
        clamped = arena.clamp(p)
        assert arena.contains(clamped)
        assert arena.clamp(clamped) == clamped

    @given(points)
    @settings(max_examples=100)
    def test_clamp_fixes_inside_points(self, p):
        arena = Arena(100, 60)
        if arena.contains(p):
            assert arena.clamp(p) == p


@st.composite
def placements(draw):
    n = draw(st.integers(min_value=2, max_value=15))
    xs = draw(st.lists(st.floats(0, 100), min_size=n, max_size=n))
    ys = draw(st.lists(st.floats(0, 100), min_size=n, max_size=n))
    ranges = draw(st.lists(st.floats(1, 60), min_size=n, max_size=n))
    return list(zip(xs, ys, ranges))


class TestTopologyProperties:
    @given(placements())
    @settings(max_examples=100)
    def test_grid_recompute_matches_brute_force(self, placement):
        arena = Arena(100, 100)
        nodes = [
            Node(i, Point(x, y), HeterogeneousRange(r))
            for i, (x, y, r) in enumerate(placement)
        ]
        topology = Topology(nodes, arena)
        topology.recompute()
        for i, a in enumerate(nodes):
            for j, b in enumerate(nodes):
                if i == j:
                    continue
                # The engine's documented predicate is dist²(u, v) <=
                # range(u)² — comparing hypot(dx, dy) <= range instead
                # disagrees at exact-boundary floats (hypot is correctly
                # rounded; the squared form is not), so the oracle must
                # use the squared form too.
                r = a.current_range()
                expected = a.position.distance_squared_to(b.position) <= r * r
                assert topology.has_edge(i, j) == expected

    @given(placements())
    @settings(max_examples=50)
    def test_edges_iterator_consistent_with_count(self, placement):
        arena = Arena(100, 100)
        nodes = [
            Node(i, Point(x, y), HeterogeneousRange(r))
            for i, (x, y, r) in enumerate(placement)
        ]
        topology = Topology(nodes, arena)
        assert len(list(topology.edges())) == topology.edge_count


class TestMobilityProperties:
    @given(st.integers(min_value=0, max_value=10_000), st.floats(0.5, 20.0))
    @settings(max_examples=60)
    def test_random_velocity_confined(self, seed, speed):
        arena = Arena(40, 40)
        model = RandomVelocity(random.Random(seed), speed, speed)
        position = Point(20, 20)
        for __ in range(100):
            position = model.move(position, arena)
            assert arena.contains(position)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60)
    def test_random_waypoint_confined(self, seed):
        arena = Arena(40, 40)
        model = RandomWaypoint(random.Random(seed), 1.0, 5.0)
        position = Point(10, 10)
        for __ in range(100):
            position = model.move(position, arena)
            assert arena.contains(position)
