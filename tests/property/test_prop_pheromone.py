"""Property tests: pheromone field invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pheromone import PheromoneField

nodes = st.integers(min_value=0, max_value=10)
deposits = st.lists(
    st.tuples(nodes, nodes, st.floats(min_value=0.01, max_value=5.0)), max_size=40
)


@given(deposits)
@settings(max_examples=100)
def test_strength_at_least_baseline(batch):
    field = PheromoneField(initial=0.1)
    for node, toward, amount in batch:
        field.deposit(node, toward, amount)
    for node in range(11):
        for toward in range(11):
            assert field.strength(node, toward) >= 0.1


@given(deposits)
@settings(max_examples=100)
def test_total_equals_sum_of_deposits(batch):
    field = PheromoneField()
    expected = 0.0
    for node, toward, amount in batch:
        field.deposit(node, toward, amount)
        expected += amount
    assert abs(field.total() - expected) < 1e-9


@given(deposits, st.integers(min_value=1, max_value=10))
@settings(max_examples=100)
def test_evaporation_strictly_decreases_total(batch, rounds):
    field = PheromoneField(evaporation=0.3)
    for node, toward, amount in batch:
        field.deposit(node, toward, amount)
    previous = field.total()
    for __ in range(rounds):
        field.evaporate()
        current = field.total()
        assert current <= previous
        previous = current


@given(deposits)
@settings(max_examples=100)
def test_evaporation_eventually_empties(batch):
    field = PheromoneField(evaporation=0.5)
    for node, toward, amount in batch:
        field.deposit(node, toward, amount)
    for __ in range(60):
        field.evaporate()
    assert field.trail_count() == 0
    assert field.total() == 0.0


@given(deposits, st.lists(nodes, min_size=1, max_size=6, unique=True))
@settings(max_examples=100)
def test_weights_match_strengths(batch, candidates):
    field = PheromoneField(initial=0.2)
    for node, toward, amount in batch:
        field.deposit(node, toward, amount)
    weights = field.weights(0, candidates)
    assert weights == [field.strength(0, c) for c in candidates]
    assert all(w >= 0.2 for w in weights)
