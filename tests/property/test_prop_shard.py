"""Property tests: sharded-world bit-identity and delta reassembly.

The sharded world's contract is exact equivalence, not approximation:
at any shard count the run must produce the serial world's results,
tables, and per-step topology bit for bit.  These suites pin that
contract over random seeds and shard counts, plus the two merge
operations the coordinator relies on (edge-delta reassembly and
metrics-snapshot merging).
"""

import pytest

np = pytest.importorskip("numpy")

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.channel import ChannelConfig
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.routing.table import TableGuard
from repro.routing.world import RoutingWorld, RoutingWorldConfig
from repro.shard.world import ShardedRoutingWorld

GC = GeneratorConfig(
    node_count=36,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=4,
    mobile_fraction=0.5,
)

CFG = RoutingWorldConfig(
    agent_kind="oldest-node",
    population=10,
    visiting=True,
    stigmergic=True,
    route_ttl=40,
    total_steps=12,
    converged_after=6,
    channel=ChannelConfig(loss=0.1, distance_factor=0.3),
    table_guard=TableGuard(),
    check_invariants=False,
    batch_agents=False,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def table_state(bank, n):
    return [
        (
            sorted(bank.table(node)._entries.items()),
            sorted(bank.table(node)._sequence_floors.items()),
            bank.table(node).guard_rejections,
        )
        for node in range(n)
    ]


def run_serial(network_seed, world_seed, config=CFG):
    topology = NetworkGenerator(GC, network_seed).generate_manet()
    world = RoutingWorld(topology, config, world_seed)
    return world, world.run()


class TestBitIdentity:
    @given(network_seed=seeds, world_seed=seeds, shards=st.sampled_from([1, 2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_sharded_equals_serial(self, network_seed, world_seed, shards):
        serial, expected = run_serial(network_seed, world_seed)
        sharded = ShardedRoutingWorld(
            GC, replace(CFG, shards=shards), network_seed, world_seed
        )
        actual = sharded.run()
        assert actual.times == expected.times
        assert actual.connectivity == expected.connectivity
        assert actual.meetings == expected.meetings
        assert actual.overhead == expected.overhead
        assert actual.guard_rejections == expected.guard_rejections
        assert table_state(sharded.tables, GC.node_count) == table_state(
            serial.tables, GC.node_count
        )
        assert [(a.agent_id, a.location) for a in sharded.agents] == [
            (a.agent_id, a.location) for a in serial.agents
        ]

    @given(network_seed=seeds, world_seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_single_shard_identity_without_visiting(self, network_seed, world_seed):
        config = replace(CFG, visiting=False, stigmergic=False, shards=1)
        serial_config = replace(config, shards=None)
        topology = NetworkGenerator(GC, network_seed).generate_manet()
        expected = RoutingWorld(topology, serial_config, world_seed).run()
        actual = ShardedRoutingWorld(GC, config, network_seed, world_seed).run()
        assert actual.times == expected.times
        assert actual.connectivity == expected.connectivity
        assert actual.overhead == expected.overhead


class TestDeltaReassembly:
    @given(network_seed=seeds, shards=st.sampled_from([2, 4]))
    @settings(max_examples=8, deadline=None)
    def test_tile_streams_reassemble_the_global_adjacency(
        self, network_seed, shards
    ):
        """The mirror built from tile edge-deltas tracks the real topology
        exactly, step by step."""
        world_seed = 5
        topology = NetworkGenerator(GC, network_seed).generate_manet()
        serial = RoutingWorld(topology, CFG, world_seed)
        serial_steps = []
        serial.engine.hooks.subscribe(
            "connectivity_recorded",
            lambda **kw: serial_steps.append(
                {u: frozenset(vs) for u, vs in serial.topology.adjacency_view().items()}
            ),
        )
        serial.run()

        sharded = ShardedRoutingWorld(
            GC, replace(CFG, shards=shards), network_seed, world_seed
        )
        sharded_steps = []
        sharded.engine.hooks.subscribe(
            "connectivity_recorded",
            lambda **kw: sharded_steps.append(
                {
                    u: frozenset(vs)
                    for u, vs in sharded._mirror.adjacency_view().items()
                }
            ),
        )
        sharded.run()
        assert len(sharded_steps) == len(serial_steps) == CFG.total_steps
        assert sharded_steps == serial_steps


@st.composite
def metric_snapshots(draw):
    """One shard-shaped snapshot: counters, gauges, and a step ring."""
    registry = MetricsRegistry()
    for name in ("routing.meetings", "routing.installs", "channel.losses"):
        amount = draw(st.integers(min_value=0, max_value=50))
        if amount:
            registry.inc(name, amount)
    gauge = draw(st.none() | st.floats(min_value=0.0, max_value=100.0))
    if gauge is not None:
        registry.gauge_set("agents.alive", gauge)
    for time in draw(
        st.lists(st.integers(min_value=1, max_value=20), max_size=6, unique=True)
    ):
        registry.ring_record("connectivity", time, draw(st.floats(0.0, 1.0)))
    return registry.snapshot()


class TestSnapshotMerge:
    @given(st.lists(metric_snapshots(), min_size=1, max_size=5), st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_order_independent(self, snapshots, rng):
        """Shard reports merge to the same view in any arrival order."""
        merged = merge_snapshots(snapshots)
        shuffled = list(snapshots)
        rng.shuffle(shuffled)
        assert merge_snapshots(shuffled) == merged

    @given(st.lists(metric_snapshots(), min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_merge_is_associative(self, snapshots):
        all_at_once = merge_snapshots(snapshots)
        pairwise = snapshots[0]
        for snapshot in snapshots[1:]:
            pairwise = merge_snapshots([pairwise, snapshot])
        assert merge_snapshots([pairwise]) == all_at_once
