"""Property tests: visit-history and footprint-board invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import VisitHistory
from repro.core.stigmergy import FootprintBoard, StigmergyField
from repro.types import NEVER

nodes = st.integers(min_value=0, max_value=30)
agents = st.integers(min_value=0, max_value=10)

visit_sequences = st.lists(st.tuples(nodes, st.integers(min_value=0, max_value=500)))


class TestHistoryProperties:
    @given(st.integers(min_value=1, max_value=8), visit_sequences)
    @settings(max_examples=100)
    def test_capacity_never_exceeded(self, capacity, visits):
        history = VisitHistory(capacity)
        for node, time in visits:
            history.record(node, time)
            assert len(history) <= capacity

    @given(st.integers(min_value=1, max_value=8), visit_sequences)
    @settings(max_examples=100)
    def test_remembered_time_is_a_recorded_time(self, capacity, visits):
        history = VisitHistory(capacity)
        recorded = {}
        for node, time in visits:
            history.record(node, time)
            recorded.setdefault(node, []).append(time)
        for node, observed_times in recorded.items():
            remembered = history.last_visit(node)
            assert remembered == NEVER or remembered in observed_times

    @given(visit_sequences)
    @settings(max_examples=100)
    def test_unbounded_history_is_exact(self, visits):
        history = VisitHistory(10_000)
        latest = {}
        for node, time in visits:
            history.record(node, time)
            latest[node] = time
        # With effectively unlimited capacity nothing is ever forgotten,
        # and the remembered time is the time of the *latest* record.
        for node, time in latest.items():
            assert history.last_visit(node) == time

    @given(
        st.integers(min_value=1, max_value=6),
        visit_sequences,
        visit_sequences,
    )
    @settings(max_examples=80)
    def test_merge_never_forgets_the_freshest_entry(self, capacity, mine, theirs):
        a = VisitHistory(capacity)
        b = VisitHistory(capacity)
        for node, time in mine:
            a.record(node, time)
        for node, time in theirs:
            b.record(node, time)
        freshest = max(
            [t for __, t in a.items()] + [t for __, t in b.items()],
            default=None,
        )
        a.merge_from(b)
        if freshest is not None:
            assert freshest in {t for __, t in a.items()}

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=10),
        visit_sequences,
        visit_sequences,
    )
    @settings(max_examples=100)
    def test_merge_trim_evicts_in_record_order(
        self, capacity, peer_capacity, mine, theirs
    ):
        """merge_from's single-pass trim must evict exactly the entries
        that repeated record()-style stalest-first eviction — min by
        ``(time, id)`` — would have removed, one at a time."""
        a = VisitHistory(capacity)
        b = VisitHistory(peer_capacity)
        for node, time in mine:
            a.record(node, time)
        for node, time in theirs:
            b.record(node, time)
        expected = a.snapshot()
        for node, time in b.items():
            if time > expected.get(node, NEVER):
                expected[node] = time
        while len(expected) > capacity:
            stalest = min(expected.items(), key=lambda kv: (kv[1], kv[0]))[0]
            del expected[stalest]
        a.merge_from(b)
        assert a.snapshot() == expected


stamp_sequences = st.lists(
    st.tuples(agents, nodes, st.integers(min_value=0, max_value=100)), max_size=40
)


class TestBoardProperties:
    @given(st.integers(min_value=1, max_value=5), stamp_sequences)
    @settings(max_examples=100)
    def test_capacity_never_exceeded(self, capacity, stamps):
        board = FootprintBoard(capacity=capacity)
        for agent, target, time in stamps:
            board.stamp(agent, target, time)
            assert len(board) <= capacity

    @given(stamp_sequences)
    @settings(max_examples=100)
    def test_at_most_one_mark_per_agent(self, stamps):
        board = FootprintBoard(capacity=100)
        for agent, target, time in stamps:
            board.stamp(agent, target, time)
        marks = board.fresh_marks(now=10**6)
        assert len({m.agent for m in marks}) == len(marks)

    @given(stamp_sequences, st.integers(min_value=1, max_value=20))
    @settings(max_examples=100)
    def test_fresh_targets_subset_of_all_targets(self, stamps, freshness):
        board = FootprintBoard(capacity=100, freshness=freshness)
        stamped_targets = set()
        for agent, target, time in stamps:
            board.stamp(agent, target, time)
            stamped_targets.add(target)
        now = max((t for __, __, t in stamps), default=0)
        assert board.fresh_targets(now) <= stamped_targets


class TestFieldProperties:
    @given(
        stamp_sequences,
        st.lists(nodes, min_size=1, max_size=8, unique=True),
        nodes,
    )
    @settings(max_examples=100)
    def test_filter_returns_nonempty_subset(self, stamps, candidates, at_node):
        field = StigmergyField(freshness=10)
        now = 0
        for agent, target, time in stamps:
            field.stamp(at_node, agent, target, time)
            now = max(now, time)
        filtered = field.filter_candidates(at_node, candidates, now)
        assert filtered  # never empties the candidate set
        assert set(filtered) <= set(candidates)
        # Order of surviving candidates is preserved.
        positions = [candidates.index(c) for c in filtered]
        assert positions == sorted(positions)
