"""Property tests: incremental topology and connectivity-cache equivalence.

The incremental engine's contract is bit-identity with the naive
rebuild-from-scratch computation — under mobility, crashes, recoveries
and link blackouts, on both the vectorized and the pure-Python grid
paths.  These tests drive randomized traces and compare graphs (and the
delta-aware connectivity result) step by step.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.generator import GeneratorConfig, generate_manet_network
from repro.routing.connectivity import (
    ConnectivityCache,
    FunctionalConnectivity,
    connected_nodes,
)
from repro.routing.table import RouteEntry, TableBank

NODES = 24
GATEWAYS = 3

CONFIG = GeneratorConfig(
    node_count=NODES,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=GATEWAYS,
    mobile_fraction=0.5,
)


def build(seed, incremental, vectorized=True):
    topology = generate_manet_network(seed, CONFIG)
    if incremental:
        topology.set_vectorized(vectorized)
    else:
        topology.set_incremental(False)
    return topology


def random_fault_ops(rng, step):
    """A small random batch of fault transitions for one step."""
    ops = []
    for __ in range(rng.randrange(3)):
        kind = rng.randrange(4)
        node = rng.randrange(NODES)
        other = rng.randrange(NODES)
        if kind == 0:
            ops.append(("down", node))
        elif kind == 1:
            ops.append(("up", node))
        elif kind == 2 and node != other:
            ops.append(("block", node, other))
        elif kind == 3 and node != other:
            ops.append(("unblock", node, other))
    return ops


def apply_ops(topology, ops):
    for op in ops:
        if op[0] == "down":
            topology.set_node_down(op[1])
        elif op[0] == "up":
            topology.set_node_up(op[1])
        elif op[0] == "block":
            topology.block_edge(op[1], op[2])
        elif op[0] == "unblock":
            topology.unblock_edge(op[1], op[2])


class TestIncrementalEquivalence:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_naive_under_mobility_and_faults(self, seed, ops_seed, vectorized):
        incremental = build(seed, incremental=True, vectorized=vectorized)
        naive = build(seed, incremental=False)
        rng = random.Random(ops_seed)
        for step in range(12):
            ops = random_fault_ops(rng, step)
            for topology in (incremental, naive):
                topology.advance()
                apply_ops(topology, ops)
                topology.recompute()
            assert incremental.edge_set() == naive.edge_set()
            assert incremental.down_ids == naive.down_ids
            assert incremental.consistency_problems() == []

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_vector_and_grid_paths_agree(self, seed):
        vector = build(seed, incremental=True, vectorized=True)
        grid = build(seed, incremental=True, vectorized=False)
        for __ in range(10):
            for topology in (vector, grid):
                topology.advance()
                topology.recompute()
            assert vector.edge_set() == grid.edge_set()


class TestConnectivityCacheEquivalence:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_cache_matches_naive_walks_under_crash_recover(self, seed, ops_seed):
        topology = build(seed, incremental=True)
        bank = TableBank(NODES)
        cache = ConnectivityCache(topology, bank, walk_ttl=16)
        gateways = topology.all_gateway_ids
        rng = random.Random(ops_seed)
        for step in range(12):
            topology.advance()
            # Crash / recover random nodes (the cache must flush when a
            # gateway's liveness flips and re-walk affected starts
            # otherwise).
            apply_ops(topology, random_fault_ops(rng, step))
            # Install a couple of random routes — some useful, some
            # dangling — so walks succeed, fail and change outcome.
            for __ in range(rng.randrange(4)):
                node = rng.randrange(NODES)
                bank.table(node).install(
                    RouteEntry(
                        gateway=rng.choice(gateways),
                        next_hop=rng.randrange(NODES),
                        hops=1 + rng.randrange(4),
                        installed_at=step,
                        gateway_seen_at=step,
                    )
                )
            assert cache.connected() == connected_nodes(topology, bank, walk_ttl=16)


class TestFunctionalConnectivityEquivalence:
    """The eff-chase evaluator must match the exact per-node walks."""

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_naive_walks_under_churn(self, seed, ops_seed, vectorized):
        topology = build(seed, incremental=True, vectorized=vectorized)
        bank = TableBank(NODES)
        functional = FunctionalConnectivity(topology, bank, walk_ttl=16)
        gateways = topology.all_gateway_ids
        rng = random.Random(ops_seed)
        for step in range(12):
            topology.advance()
            apply_ops(topology, random_fault_ops(rng, step))
            for __ in range(rng.randrange(4)):
                node = rng.randrange(NODES)
                bank.table(node).install(
                    RouteEntry(
                        gateway=rng.choice(gateways),
                        next_hop=rng.randrange(NODES),
                        hops=1 + rng.randrange(4),
                        installed_at=step,
                        gateway_seen_at=step,
                    )
                )
            assert functional.connected() == connected_nodes(
                topology, bank, walk_ttl=16
            )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_routing_loops_fall_back_to_exact_walks(self, seed):
        """Two-node next-hop cycles taint the eff chain; the exact-walk
        fallback (where the visited-set filter can re-route the walk)
        must still match the naive evaluation."""
        topology = build(seed, incremental=True)
        bank = TableBank(NODES)
        functional = FunctionalConnectivity(topology, bank, walk_ttl=16)
        gateways = topology.all_gateway_ids
        rng = random.Random(seed)
        for step in range(8):
            topology.advance()
            # Deliberately install looping route pairs (a -> b, b -> a)
            # plus a second preference so the filtered walk can escape.
            for __ in range(2):
                a = rng.randrange(NODES)
                b = rng.randrange(NODES)
                if a == b:
                    continue
                for u, v in ((a, b), (b, a)):
                    bank.table(u).install(
                        RouteEntry(
                            gateway=rng.choice(gateways),
                            next_hop=v,
                            hops=1 + rng.randrange(3),
                            installed_at=step,
                            gateway_seen_at=step,
                        )
                    )
            assert functional.connected() == connected_nodes(
                topology, bank, walk_ttl=16
            )
