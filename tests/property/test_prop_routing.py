"""Property tests: routing tables and connectivity-walk safety."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.manual import fixed_topology
from repro.routing.connectivity import connected_nodes, walk_to_gateway
from repro.routing.table import RouteEntry, RoutingTable, TableBank

node_ids = st.integers(min_value=0, max_value=7)

entries = st.builds(
    RouteEntry,
    gateway=node_ids,
    next_hop=node_ids,
    hops=st.integers(min_value=1, max_value=10),
    installed_at=st.integers(min_value=0, max_value=100),
    gateway_seen_at=st.integers(min_value=0, max_value=100),
)


class TestTableProperties:
    @given(st.lists(entries, max_size=30))
    @settings(max_examples=100)
    def test_at_most_one_entry_per_gateway(self, batch):
        table = RoutingTable()
        for entry in batch:
            table.install(entry)
        preferred = table.entries_by_preference()
        assert len({e.gateway for e in preferred}) == len(preferred)

    @given(st.lists(entries, max_size=30))
    @settings(max_examples=100)
    def test_kept_entry_is_best_seen(self, batch):
        table = RoutingTable()
        for entry in batch:
            table.install(entry)
        by_gateway = {}
        for entry in batch:
            current = by_gateway.get(entry.gateway)
            if current is None or entry.fresher_than(current):
                by_gateway[entry.gateway] = entry
        for gateway, expected in by_gateway.items():
            assert table.entry_for(gateway) == expected

    @given(st.lists(entries, max_size=30), st.integers(min_value=1, max_value=50))
    @settings(max_examples=100)
    def test_expiry_removes_exactly_stale(self, batch, ttl):
        table = RoutingTable(ttl=ttl)
        for entry in batch:
            table.install(entry)
        now = 120
        table.expire(now)
        for entry in table.entries_by_preference():
            assert entry.installed_at >= now - ttl

    @given(st.lists(entries, max_size=30))
    @settings(max_examples=100)
    def test_preference_order_sorted(self, batch):
        table = RoutingTable()
        for entry in batch:
            table.install(entry)
        preferred = table.entries_by_preference()
        keys = [(-e.gateway_seen_at, e.hops, -e.installed_at, e.gateway) for e in preferred]
        assert keys == sorted(keys)


@st.composite
def walk_scenarios(draw):
    """A random small digraph, gateway set, and arbitrary table contents."""
    n = draw(st.integers(min_value=2, max_value=8))
    edge_pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=n * 2,
        )
    )
    edges = [(a, b) for a, b in edge_pairs if a != b]
    gateways = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=2)
    )
    raw_entries = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),  # at node
                st.integers(min_value=0, max_value=n - 1),  # gateway field
                st.integers(min_value=0, max_value=n - 1),  # next hop
                st.integers(min_value=1, max_value=6),  # hops
                st.integers(min_value=0, max_value=50),  # installed at
            ),
            max_size=n * 3,
        )
    )
    return n, edges, gateways, raw_entries


class TestWalkSafety:
    @given(walk_scenarios())
    @settings(max_examples=150)
    def test_walks_never_lie(self, scenario):
        """Whatever garbage the tables hold, a successful walk is genuine:

        every hop is a real current link and the path ends on a gateway;
        and a walk never crashes or loops forever.
        """
        n, edges, gateways, raw_entries = scenario
        topology = fixed_topology(n, edges, gateways=gateways)
        bank = TableBank(n)
        for at_node, gateway, next_hop, hops, installed_at in raw_entries:
            bank.table(at_node).install(
                RouteEntry(gateway, next_hop, hops, installed_at)
            )
        for start in range(n):
            path = walk_to_gateway(start, topology, bank, walk_ttl=16)
            if path is None:
                continue
            assert path[0] == start
            assert topology.node(path[-1]).is_gateway
            for a, b in zip(path, path[1:]):
                assert topology.has_edge(a, b)
            assert len(set(path)) == len(path)  # no cycles

    @given(walk_scenarios())
    @settings(max_examples=100)
    def test_connected_nodes_includes_gateways_and_is_sound(self, scenario):
        n, edges, gateways, raw_entries = scenario
        topology = fixed_topology(n, edges, gateways=gateways)
        bank = TableBank(n)
        for at_node, gateway, next_hop, hops, installed_at in raw_entries:
            bank.table(at_node).install(
                RouteEntry(gateway, next_hop, hops, installed_at)
            )
        connected = connected_nodes(topology, bank)
        assert set(topology.gateway_ids) <= connected
        assert connected <= set(topology.node_ids)
