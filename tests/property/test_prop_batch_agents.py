"""Property tests: SoA batch agent engine equivalence with the oracle.

The batch engine's contract (mirroring the incremental topology's) is
bit-identity with the per-object agent stepper — same RoutingResult,
same agent state, same routing tables — across agent kinds, visiting,
stigmergy, lossy channels and fault schedules.  These tests run the
same world twice, once per engine, and compare everything observable.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan
from repro.net.channel import ChannelConfig
from repro.net.generator import GeneratorConfig, generate_manet_network
from repro.routing.world import RoutingWorld, RoutingWorldConfig

NODES = 24
GATEWAYS = 3

CONFIG = GeneratorConfig(
    node_count=NODES,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=GATEWAYS,
    mobile_fraction=0.5,
)

LOSSY = ChannelConfig(loss=0.25, hop_retries=2, backoff_base=1, backoff_cap=4)


def fault_plan(seed):
    """A deterministic schedule mixing every fault class the engines see."""
    return (
        FaultPlan()
        .with_policy("respawn")
        .crash(4, seed % NODES)
        .crash(9, (seed + 7) % NODES)
        .recover(15, seed % NODES)
        .blackout(6, (seed + 1) % NODES, (seed + 3) % NODES)
        .restore(20, (seed + 1) % NODES, (seed + 3) % NODES)
        .battery_shock(12, (seed + 11) % NODES, 0.5)
        .wipe_table(18, (seed + 5) % NODES)
    )


def run_pair(seed, steps=30, **kw):
    worlds = []
    for batch in (False, True):
        topology = generate_manet_network(seed, CONFIG)
        config = RoutingWorldConfig(
            total_steps=steps,
            converged_after=steps // 2,
            batch_agents=batch,
            **kw,
        )
        world = RoutingWorld(topology, config, seed + 1)
        worlds.append((world.run(), world))
    return worlds


def assert_identical(obj, bat):
    obj_res, obj_world = obj
    bat_res, bat_world = bat
    assert obj_res.connectivity == bat_res.connectivity
    assert obj_res.meetings == bat_res.meetings
    assert obj_res.overhead == bat_res.overhead
    assert obj_res.guard_rejections == bat_res.guard_rejections
    for a, b in zip(obj_world.agents, bat_world.agents):
        assert a.location == b.location
        assert a.tracks == b.tracks
        assert a.history.snapshot() == b.history.snapshot()
        assert vars(a.overhead) == vars(b.overhead)
        assert (a.migration.target, a.migration.failures, a.migration.retry_at) == (
            b.migration.target,
            b.migration.failures,
            b.migration.retry_at,
        )
    for ta, tb in zip(obj_world.tables.tables, bat_world.tables.tables):
        assert ta.entries() == tb.entries()
        assert ta._sequence_floors == tb._sequence_floors


class TestBatchEngineEquivalence:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(["oldest-node", "random"]),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=8, deadline=None)
    def test_clean_runs_are_bit_identical(self, seed, kind, visiting, stigmergic):
        obj, bat = run_pair(
            seed, agent_kind=kind, visiting=visiting, stigmergic=stigmergic
        )
        assert_identical(obj, bat)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(["oldest-node", "random"]),
        st.booleans(),
    )
    @settings(max_examples=6, deadline=None)
    def test_lossy_runs_are_bit_identical(self, seed, kind, visiting):
        obj, bat = run_pair(seed, agent_kind=kind, visiting=visiting, channel=LOSSY)
        assert_identical(obj, bat)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.booleans(),
    )
    @settings(max_examples=6, deadline=None)
    def test_faulted_runs_are_bit_identical(self, seed, visiting):
        obj, bat = run_pair(seed, visiting=visiting, fault_plan=fault_plan(seed))
        assert_identical(obj, bat)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=6, deadline=None)
    def test_small_history_sizes_agree(self, seed, history_size):
        """Tiny histories stress the track-drop boundary
        (``track.hops + 1 <= history_size``) in both engines."""
        obj, bat = run_pair(seed, history_size=history_size, visiting=True)
        assert_identical(obj, bat)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=4, deadline=None)
    def test_engine_flip_mid_run_changes_nothing(self, seed):
        """set_batch_agents mid-run must hand over state losslessly."""
        worlds = []
        for flip_at in (None, 10):
            topology = generate_manet_network(seed, CONFIG)
            config = RoutingWorldConfig(
                total_steps=30, converged_after=15, batch_agents=flip_at is None
            )
            world = RoutingWorld(topology, config, seed + 1)
            for step in range(30):
                if step == flip_at:
                    world.set_batch_agents(True)
                world.engine.step()
            world.set_batch_agents(False)  # flush arrays back into objects
            worlds.append(world)
        ref, flipped = worlds
        assert ref.result.connectivity == flipped.result.connectivity
        for a, b in zip(ref.agents, flipped.agents):
            assert a.location == b.location
            assert a.tracks == b.tracks
            assert a.history.snapshot() == b.history.snapshot()
        for ta, tb in zip(ref.tables.tables, flipped.tables.tables):
            assert ta.entries() == tb.entries()
