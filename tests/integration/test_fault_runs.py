"""Integration: fault-injected runs are deterministic and degrade gracefully.

The acceptance bar from the fault subsystem's design: a seeded fault
plan (crash + recovery mid-run) produces bit-identical results whether
the sweep runs serially or across pool workers, and connectivity
re-converges after a gateway outage to within tolerance of the no-fault
baseline.
"""

import pytest

from repro.experiments.runner import (
    clear_topology_cache,
    run_mapping_variants,
    run_routing_variants,
    set_default_fault_plan,
    set_default_workers,
)
from repro.faults.plan import FaultPlan, parse_fault_plan
from repro.mapping.world import MappingWorldConfig, run_mapping
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.routing.world import RoutingWorldConfig, run_routing

ROUTING_NET = GeneratorConfig(
    node_count=40,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=3,
    mobile_fraction=0.5,
)
MAPPING_NET = GeneratorConfig(
    node_count=30, target_edges=None, require_strong_connectivity=True
)


@pytest.fixture(autouse=True)
def reset_runner_defaults():
    set_default_workers(1)
    set_default_fault_plan(None)
    clear_topology_cache()
    yield
    set_default_workers(1)
    set_default_fault_plan(None)
    clear_topology_cache()


def churn_plan(policy="respawn"):
    return (
        FaultPlan.random_churn(
            99,
            node_count=40,
            start=10,
            end=25,
            crashes=4,
            min_downtime=5,
            max_downtime=12,
            agent_policy=policy,
        )
        .gateway_outage(15, 30)
        .blackout(12, 1, 2)
        .restore(22, 1, 2)
    )


class TestFaultedRunDeterminism:
    def test_routing_serial_vs_pool_bit_identical(self):
        variants = {
            "faulted": RoutingWorldConfig(
                population=8,
                total_steps=50,
                converged_after=25,
                fault_plan=churn_plan(),
            )
        }
        serial = run_routing_variants(ROUTING_NET, variants, runs=3, master_seed=6)
        pooled = run_routing_variants(
            ROUTING_NET, variants, runs=3, master_seed=6, workers=4
        )
        assert [r.connectivity for r in serial["faulted"].results] == [
            r.connectivity for r in pooled["faulted"].results
        ]
        assert [r.resilience for r in serial["faulted"].results] == [
            r.resilience for r in pooled["faulted"].results
        ]

    def test_mapping_serial_vs_pool_bit_identical(self):
        plan = FaultPlan().crash(5, 3).recover(20, 3).with_policy("respawn")
        variants = {
            "faulted": MappingWorldConfig(
                population=4, max_steps=1500, fault_plan=plan
            )
        }
        serial = run_mapping_variants(MAPPING_NET, variants, runs=3, master_seed=9)
        clear_topology_cache()
        pooled = run_mapping_variants(
            MAPPING_NET, variants, runs=3, master_seed=9, workers=4
        )
        assert serial["faulted"].finishing_times == pooled["faulted"].finishing_times
        assert [r.average_knowledge for r in serial["faulted"].results] == [
            r.average_knowledge for r in pooled["faulted"].results
        ]

    def test_same_plan_same_seed_same_world(self):
        topology = NetworkGenerator(ROUTING_NET, 7).generate_manet()
        config = RoutingWorldConfig(
            population=8, total_steps=40, converged_after=20, fault_plan=churn_plan()
        )
        first = run_routing(topology, config, seed=3)
        again = run_routing(
            NetworkGenerator(ROUTING_NET, 7).generate_manet(), config, seed=3
        )
        assert first.connectivity == again.connectivity
        assert first.resilience == again.resilience


class TestGatewayOutageRecovery:
    def test_connectivity_reconverges_near_no_fault_baseline(self):
        plan = FaultPlan().gateway_outage(20, 35)
        faulted_config = RoutingWorldConfig(
            population=12, total_steps=100, converged_after=50, fault_plan=plan
        )
        baseline_config = RoutingWorldConfig(
            population=12, total_steps=100, converged_after=50
        )
        deltas = []
        for seed in range(3):
            topology = NetworkGenerator(ROUTING_NET, 11).generate_manet()
            faulted = run_routing(topology, faulted_config, seed=seed)
            topology = NetworkGenerator(ROUTING_NET, 11).generate_manet()
            baseline = run_routing(topology, baseline_config, seed=seed)
            tail = slice(60, None)  # well after the outage ends at 35
            faulted_tail = faulted.connectivity[tail]
            baseline_tail = baseline.connectivity[tail]
            deltas.append(
                sum(faulted_tail) / len(faulted_tail)
                - sum(baseline_tail) / len(baseline_tail)
            )
        # Averaged over seeds, the recovered tail sits within a small
        # tolerance of the never-faulted run.
        assert abs(sum(deltas) / len(deltas)) < 0.1

    def test_resilience_report_sees_the_dip(self):
        plan = FaultPlan().gateway_outage(20, 35)
        config = RoutingWorldConfig(
            population=12, total_steps=100, converged_after=50, fault_plan=plan
        )
        topology = NetworkGenerator(ROUTING_NET, 11).generate_manet()
        result = run_routing(topology, config, seed=1)
        report = result.resilience
        assert report is not None
        assert report.faults_injected == 2
        assert report.first_fault_time == 20
        assert report.last_fault_time == 35
        assert report.dip_depth >= 0.0
        assert report.agents_total == 12


class TestAgentPolicies:
    def _run_with_policy(self, policy):
        plan = churn_plan(policy=policy)
        config = RoutingWorldConfig(
            population=10, total_steps=50, converged_after=25, fault_plan=plan
        )
        topology = NetworkGenerator(ROUTING_NET, 13).generate_manet()
        return run_routing(topology, config, seed=2)

    def test_die_policy_can_lose_agents(self):
        result = self._run_with_policy("die")
        assert result.resilience.agents_alive <= result.resilience.agents_total

    def test_respawn_policy_keeps_population(self):
        result = self._run_with_policy("respawn")
        assert result.resilience.agents_alive == result.resilience.agents_total
        assert result.resilience.agent_survival == 1.0

    def test_freeze_policy_keeps_population(self):
        result = self._run_with_policy("freeze")
        assert result.resilience.agents_alive == result.resilience.agents_total

    def test_mapping_survives_all_agents_dying(self):
        # Crash the whole network out from under a tiny team: the run
        # must stop cleanly (all-agents-dead), never hang or crash.
        plan = FaultPlan(agent_policy="die")
        for node in range(30):
            plan = plan.crash(5, node)
        topology = NetworkGenerator(MAPPING_NET, 21).generate_static()
        config = MappingWorldConfig(population=3, max_steps=500, fault_plan=plan)
        result = run_mapping(topology, config, seed=4)
        assert result.steps_simulated <= 500
        assert not result.finished


class TestDefaultFaultPlanInjection:
    def test_cli_style_default_plan_applies_to_all_variants(self):
        set_default_fault_plan(parse_fault_plan("crash@10:3;recover@25:3"))
        variants = {
            "a": RoutingWorldConfig(population=6, total_steps=30, converged_after=15),
            "b": RoutingWorldConfig(
                agent_kind="random", population=6, total_steps=30, converged_after=15
            ),
        }
        outcomes = run_routing_variants(ROUTING_NET, variants, runs=1, master_seed=3)
        for name in variants:
            assert outcomes[name].results[0].resilience is not None
