"""Integration: every example script runs cleanly as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "3")
        assert result.returncode == 0, result.stderr
        assert "perfect map after" in result.stdout

    def test_manet_routing(self):
        result = run_example("manet_routing.py", "3")
        assert result.returncode == 0, result.stderr
        assert "mean connectivity" in result.stdout
        assert "legend" in result.stdout

    def test_packet_delivery(self):
        result = run_example("packet_delivery.py", "3")
        assert result.returncode == 0, result.stderr
        assert "connectivity" in result.stdout
        assert "delivered" in result.stdout

    def test_degradation_remapping(self):
        result = run_example("degradation_remapping.py", "3")
        assert result.returncode == 0, result.stderr
        assert "perfect map of the changed network" in result.stdout

    def test_ant_vs_footprints(self):
        result = run_example("ant_vs_footprints.py", "3")
        assert result.returncode == 0, result.stderr
        assert "ant pheromone" in result.stdout
        assert "footprints" in result.stdout

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "manet_routing.py",
            "packet_delivery.py",
            "degradation_remapping.py",
            "ant_vs_footprints.py",
        ],
    )
    def test_examples_deterministic(self, name):
        first = run_example(name, "5")
        second = run_example(name, "5")
        assert first.stdout == second.stdout
