"""Integration: routing scenario end-to-end, paper claims at small scale."""

import statistics

from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.routing.world import RoutingWorldConfig, run_routing

NETWORK = GeneratorConfig(
    node_count=60,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=4,
    mobile_fraction=0.5,
)

SEEDS = range(6)


def mean_connectivity(**config_kwargs):
    defaults = dict(
        agent_kind="oldest-node",
        population=20,
        history_size=8,
        total_steps=120,
        converged_after=60,
    )
    defaults.update(config_kwargs)
    config = RoutingWorldConfig(**defaults)
    values = []
    for seed in SEEDS:
        topology = NetworkGenerator(NETWORK, 3000 + seed).generate_manet()
        values.append(run_routing(topology, config, 4000 + seed).mean_connectivity)
    return statistics.mean(values)


class TestPaperOrderings:
    def test_oldest_node_beats_random(self):
        oldest = mean_connectivity(agent_kind="oldest-node")
        rand = mean_connectivity(agent_kind="random")
        assert oldest > rand

    def test_more_agents_more_connectivity(self):
        small = mean_connectivity(population=5)
        large = mean_connectivity(population=40)
        assert large > small

    def test_more_history_more_connectivity(self):
        short = mean_connectivity(history_size=2)
        long = mean_connectivity(history_size=20)
        assert long > short

    def test_connectivity_rises_from_start(self):
        config = RoutingWorldConfig(
            agent_kind="oldest-node",
            population=20,
            history_size=8,
            total_steps=120,
            converged_after=60,
        )
        topology = NetworkGenerator(NETWORK, 3100).generate_manet()
        result = run_routing(topology, config, 4100)
        early = statistics.mean(result.connectivity[:10])
        late = statistics.mean(result.connectivity[-30:])
        assert late > early


class TestFullRunBehaviour:
    def test_all_variants_run_and_stay_in_bounds(self):
        topology_seed = 3200
        for kind in ("random", "oldest-node"):
            for visiting in (False, True):
                for stigmergic in (False, True):
                    topology = NetworkGenerator(NETWORK, topology_seed).generate_manet()
                    config = RoutingWorldConfig(
                        agent_kind=kind,
                        population=12,
                        visiting=visiting,
                        stigmergic=stigmergic,
                        total_steps=60,
                        converged_after=30,
                    )
                    result = run_routing(topology, config, 11)
                    assert len(result.connectivity) == 60
                    assert all(0.0 <= v <= 1.0 for v in result.connectivity)

    def test_paired_runs_share_movement(self):
        # The same network seed must reproduce identical node trajectories
        # regardless of the agent configuration running on top.
        a = NetworkGenerator(NETWORK, 3300).generate_manet()
        b = NetworkGenerator(NETWORK, 3300).generate_manet()
        config_a = RoutingWorldConfig(population=5, total_steps=1, converged_after=0)
        config_b = RoutingWorldConfig(population=25, total_steps=1, converged_after=0)
        run_routing(a, config_a, 1)
        run_routing(b, config_b, 1)
        assert [n.position for n in a.nodes] == [n.position for n in b.nodes]
        assert a.edge_set() == b.edge_set()

    def test_gateway_islands_cap_connectivity(self):
        # If gateways plus agents cannot reach some nodes, connectivity
        # stays strictly below 1; the metric must reflect that honestly.
        topology = NetworkGenerator(NETWORK, 3400).generate_manet()
        config = RoutingWorldConfig(population=30, total_steps=80, converged_after=40)
        result = run_routing(topology, config, 12)
        assert max(result.connectivity) <= 1.0
