"""Integration: CLI JSON/SVG outputs round-trip."""

import json

import pytest

from repro.cli import main
from repro.experiments.persistence import load_report
from repro.experiments.runner import clear_topology_cache


@pytest.fixture(autouse=True)
def fresh_cache(monkeypatch):
    # Reuse the tiny scale from the experiments test so CLI runs in <1s.
    from tests.integration.test_experiments_and_cli import TINY
    import repro.cli as cli_module

    monkeypatch.setattr(cli_module, "QUICK", TINY)
    clear_topology_cache()
    yield
    clear_topology_cache()


class TestCliOutputs:
    def test_json_output_loads_back(self, tmp_path, capsys):
        json_dir = tmp_path / "json"
        assert main(
            ["run", "fig7", "--quiet", "--no-plot", "--json-dir", str(json_dir)]
        ) == 0
        path = json_dir / "fig7.json"
        assert path.exists()
        report = load_report(path)
        assert report.experiment_id == "fig7"
        assert report.rows
        # The JSON itself is a stable, diffable document.
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1

    def test_svg_output_written_for_figures_with_curves(self, tmp_path, capsys):
        svg_dir = tmp_path / "svg"
        assert main(
            ["run", "fig7", "--quiet", "--no-plot", "--svg-dir", str(svg_dir)]
        ) == 0
        svg = (svg_dir / "fig7.svg").read_text()
        assert svg.startswith("<svg")
        assert "<polyline" in svg

    def test_table_only_experiment_writes_no_svg(self, tmp_path, capsys):
        svg_dir = tmp_path / "svg"
        assert main(
            ["run", "fig8", "--quiet", "--no-plot", "--svg-dir", str(svg_dir)]
        ) == 0
        assert not (svg_dir / "fig8.svg").exists()
