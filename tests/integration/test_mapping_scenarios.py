"""Integration: mapping scenario end-to-end, paper claims at small scale.

These tests run full worlds over several seeds and assert the paper's
comparative *orderings*, not absolute step counts.  Seeds and sizes are
chosen so the orderings are stable, keeping the suite deterministic.
"""

import statistics

from repro.mapping.world import MappingWorldConfig, run_mapping
from repro.net.generator import GeneratorConfig, NetworkGenerator

# 80 nodes: the smallest size at which the paper's team effects (notably
# stigmergy rescuing super-conscientious agents) are comfortably larger
# than seed noise across the 6 test seeds.
NETWORK = GeneratorConfig(
    node_count=80,
    target_edges=None,
    range_heterogeneity=0.3,
    require_strong_connectivity=True,
)

SEEDS = range(6)


def topologies():
    return [NetworkGenerator(NETWORK, 1000 + s).generate_static() for s in SEEDS]


def mean_finish(topos, **config_kwargs):
    config = MappingWorldConfig(max_steps=50_000, **config_kwargs)
    values = []
    for seed, topology in zip(SEEDS, topos):
        result = run_mapping(topology, config, 2000 + seed)
        assert result.finished, "every run must finish within the budget"
        values.append(result.finishing_time)
    return statistics.mean(values)


class TestPaperOrderings:
    def test_conscientious_beats_random_single_agent(self):
        topos = topologies()
        conscientious = mean_finish(topos, agent_kind="conscientious", population=1)
        random_walk = mean_finish(topos, agent_kind="random", population=1)
        assert conscientious * 2 < random_walk

    def test_population_speeds_up_mapping(self):
        topos = topologies()
        one = mean_finish(topos, agent_kind="conscientious", population=1)
        eight = mean_finish(topos, agent_kind="conscientious", population=8)
        assert eight < one

    def test_stigmergy_helps_super_conscientious_teams(self):
        topos = topologies()
        plain = mean_finish(topos, agent_kind="super-conscientious", population=8)
        stigmergic = mean_finish(
            topos, agent_kind="super-conscientious", population=8, stigmergic=True
        )
        assert stigmergic < plain

    def test_super_conscientious_crossover_with_population(self):
        # Paper fig5: super-conscientious wins at small populations (peer
        # info partitions the work) but loses at large ones (meetings make
        # agents identical, so they chase each other).
        topos = topologies()
        small_consc = mean_finish(topos, agent_kind="conscientious", population=6)
        small_super = mean_finish(
            topos, agent_kind="super-conscientious", population=6
        )
        large_consc = mean_finish(topos, agent_kind="conscientious", population=24)
        large_super = mean_finish(
            topos, agent_kind="super-conscientious", population=24
        )
        assert small_super < small_consc  # super best when sparse
        assert large_super > large_consc  # conscientious best when crowded

    def test_stigmergy_reverses_super_penalty(self):
        # Paper fig6: with footprints, super-conscientious wins.
        topos = topologies()
        conscientious = mean_finish(
            topos, agent_kind="conscientious", population=12, stigmergic=True
        )
        super_c = mean_finish(
            topos, agent_kind="super-conscientious", population=12, stigmergic=True
        )
        assert super_c <= conscientious * 1.05


class TestFullRunBehaviour:
    def test_minimum_knowledge_reaches_one_exactly_at_finish(self):
        topology = NetworkGenerator(NETWORK, 1234).generate_static()
        config = MappingWorldConfig(population=4, max_steps=20_000)
        result = run_mapping(topology, config, 99)
        assert result.minimum_knowledge[-1] == 1.0
        assert all(v < 1.0 for v in result.minimum_knowledge[:-1])
        assert result.times[-1] == result.finishing_time

    def test_every_agent_kind_completes(self):
        topology = NetworkGenerator(NETWORK, 4321).generate_static()
        for kind in ("random", "conscientious", "super-conscientious"):
            for stigmergic in (False, True):
                config = MappingWorldConfig(
                    agent_kind=kind,
                    population=6,
                    stigmergic=stigmergic,
                    max_steps=50_000,
                )
                result = run_mapping(topology, config, 5)
                assert result.finished, (kind, stigmergic)
