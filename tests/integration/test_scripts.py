"""Integration: helper scripts run against archived reports."""

import pathlib
import subprocess
import sys

from repro.analysis.series import TimeSeries
from repro.experiments.persistence import save_report
from repro.experiments.report import ExperimentReport

SCRIPTS_DIR = pathlib.Path(__file__).resolve().parents[2] / "scripts"


def archived_report(tmp_path):
    report = ExperimentReport(
        experiment_id="figZ",
        title="archived sample",
        paper_claim="whatever",
        columns=["variant", "value"],
    )
    report.add_row("a", 1)
    report.series["a"] = TimeSeries([1, 2], [0.1, 0.9])
    return save_report(report, tmp_path)


class TestRenderResults:
    def test_renders_single_file(self, tmp_path):
        path = archived_report(tmp_path)
        proc = subprocess.run(
            [sys.executable, str(SCRIPTS_DIR / "render_results.py"), str(path)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "figZ: archived sample" in proc.stdout
        assert "legend" in proc.stdout

    def test_renders_directory_without_plots(self, tmp_path):
        archived_report(tmp_path)
        proc = subprocess.run(
            [
                sys.executable,
                str(SCRIPTS_DIR / "render_results.py"),
                str(tmp_path),
                "--no-plot",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "figZ" in proc.stdout
        assert "legend" not in proc.stdout

    def test_empty_directory_errors(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(SCRIPTS_DIR / "render_results.py"), str(tmp_path)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 1
