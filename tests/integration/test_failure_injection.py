"""Integration: degraded, fragmented, and dying networks stay well-behaved.

The substrate must degrade gracefully — stranded agents wait, dead
batteries silence radios, fragmented MANETs cap connectivity — and no
configuration may crash or hang the worlds.
"""

from repro.mapping.world import MappingWorldConfig, run_mapping
from repro.net.battery import Battery, LinearDrain
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.net.geometry import Arena, Point
from repro.net.manual import fixed_topology
from repro.net.node import Node
from repro.net.radio import BatteryCoupledRange, FixedRange
from repro.net.topology import Topology
from repro.routing.world import RoutingWorldConfig, run_routing


class TestStrandedAgents:
    def test_agent_on_sink_node_waits_forever(self):
        # Node 2 has no out-edges: an agent starting there can never move
        # and the run must terminate on budget, not hang or crash.
        topology = fixed_topology(3, [(0, 1), (1, 0), (0, 2), (1, 2)])
        config = MappingWorldConfig(agent_kind="conscientious", max_steps=50)
        results = [run_mapping(topology, config, seed) for seed in range(8)]
        assert all(r.steps_simulated <= 50 for r in results)
        # Runs whose agent did not start on the sink finish (they only
        # need to stand on 0, 1 and 2... but 2 is absorbing: once there,
        # knowledge of 2's (empty) edge set completes the map only if the
        # rest was seen first).
        assert any(r.finished for r in results)

    def test_team_with_one_stranded_agent_cannot_finish(self):
        # Finishing is a team metric: an agent stuck on the sink before
        # seeing the full map keeps minimum knowledge below 1 forever.
        topology = fixed_topology(3, [(0, 1), (1, 0), (0, 2), (1, 2)])
        config = MappingWorldConfig(agent_kind="random", population=6, max_steps=300)
        result = run_mapping(topology, config, seed=3)
        assert result.steps_simulated == 300 or result.finished


class TestDyingNetwork:
    def build_dying_manet(self):
        # All non-gateway radios are battery-coupled with no floor and a
        # brutal drain: the network goes dark within ~10 steps.
        arena = Arena(100, 100)
        nodes = []
        nodes.append(Node(0, Point(50, 50), FixedRange(40.0), is_gateway=True))
        for node_id in range(1, 10):
            battery = Battery(LinearDrain(0.1))
            nodes.append(
                Node(
                    node_id,
                    Point(20 + 6 * node_id, 50),
                    BatteryCoupledRange(30.0, battery, floor=0.0),
                    battery=battery,
                )
            )
        topology = Topology(nodes, arena)
        topology.recompute()
        return topology

    def test_connectivity_collapses_to_gateway_fraction(self):
        topology = self.build_dying_manet()
        config = RoutingWorldConfig(
            agent_kind="oldest-node",
            population=5,
            total_steps=60,
            converged_after=30,
            route_ttl=20,
        )
        result = run_routing(topology, config, seed=1)
        # After total battery death only the gateway itself is connected.
        assert result.connectivity[-1] == 1 / 10

    def test_agents_survive_total_link_loss(self):
        topology = self.build_dying_manet()
        config = RoutingWorldConfig(
            agent_kind="random", population=8, total_steps=40, converged_after=20
        )
        result = run_routing(topology, config, seed=2)
        assert len(result.connectivity) == 40


class TestFragmentedManet:
    def test_unreachable_island_never_counts(self):
        # Two 3-node islands; only one contains the gateway.
        edges = []
        for a, b in ((0, 1), (1, 2)):
            edges.extend([(a, b), (b, a)])
        for a, b in ((3, 4), (4, 5)):
            edges.extend([(a, b), (b, a)])
        topology = fixed_topology(6, edges, gateways=[0])
        config = RoutingWorldConfig(
            agent_kind="oldest-node", population=6, total_steps=80, converged_after=40
        )
        result = run_routing(topology, config, seed=3)
        assert max(result.connectivity) <= 0.5

    def test_degradation_cannot_crash_mapping(self):
        config = GeneratorConfig(
            node_count=30,
            target_edges=None,
            require_strong_connectivity=True,
        )
        topology = NetworkGenerator(config, 50).generate_static()
        world_config = MappingWorldConfig(
            population=5,
            max_steps=3000,
            degrade_at=10,
            degrade_fraction=0.5,
            degrade_amount=0.6,
        )
        # Degradation may disconnect the network; the run must simply
        # expire its budget (or finish) without errors.
        result = run_mapping(topology, world_config, seed=4)
        assert result.steps_simulated <= 3000
