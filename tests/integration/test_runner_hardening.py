"""Integration: the hardened runner survives slow, failing, and dying tasks.

Covers the per-task timeout + bounded retry, worker-crash isolation
(one poisoned (variant, run) cannot sink the pool sweep), the
checkpoint journal that lets an interrupted sweep resume, and the
LRU bound on the static-topology cache.
"""

import os
import pathlib
import time

import pytest

from repro.errors import ExperimentError
from repro.experiments import runner
from repro.experiments.persistence import SweepCheckpoint
from repro.experiments.runner import (
    TOPOLOGY_CACHE_LIMIT,
    _run_tasks,
    _static_topology,
    _topology_cache,
    clear_topology_cache,
    run_routing_variants,
    set_default_checkpoint_dir,
    set_default_workers,
    set_task_limits,
)
from repro.net.generator import GeneratorConfig
from repro.routing.world import RoutingWorldConfig

ROUTING_NET = GeneratorConfig(
    node_count=30,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=2,
    mobile_fraction=0.5,
)


@pytest.fixture(autouse=True)
def reset_runner_defaults():
    set_default_workers(1)
    set_default_checkpoint_dir(None)
    set_task_limits(None, 1)
    clear_topology_cache()
    yield
    set_default_workers(1)
    set_default_checkpoint_dir(None)
    set_task_limits(None, 1)
    clear_topology_cache()


def _task(name, run_index, payload=None):
    """A synthetic task tuple; _run_tasks only reads slots 0 and 5."""
    return (name, payload, None, 0, 0, run_index)


# --- top-level task functions (pool workers must be able to pickle them) ---


def _echo_task(task):
    return task[0], task[5], f"ok-{task[5]}"


def _fail_until_marker_task(task):
    marker = pathlib.Path(task[1]) / f"tried-{task[0]}-{task[5]}"
    if not marker.exists():
        marker.write_text("")
        raise RuntimeError("first attempt fails")
    return task[0], task[5], "recovered"


def _always_fail_task(task):
    if task[0] == "poisoned":
        raise RuntimeError("this task never succeeds")
    return task[0], task[5], "fine"


def _hang_until_marker_task(task):
    marker = pathlib.Path(task[1]) / f"slow-{task[0]}-{task[5]}"
    if not marker.exists():
        marker.write_text("")
        time.sleep(60)  # deadline fires long before this returns
    return task[0], task[5], "fast-second-try"


def _die_until_marker_task(task):
    marker = pathlib.Path(task[1]) / f"died-{task[0]}-{task[5]}"
    if not marker.exists():
        marker.write_text("")
        os._exit(1)  # hard worker crash: Pool never completes this job
    return task[0], task[5], "after-crash"


class TestRetries:
    def test_serial_retry_recovers(self, tmp_path):
        tasks = [_task("a", 0, str(tmp_path)), _task("a", 1, str(tmp_path))]
        out = list(
            _run_tasks(tasks, _fail_until_marker_task, 1, None, "t", retries=1)
        )
        assert sorted(out) == [("a", 0, "recovered"), ("a", 1, "recovered")]

    def test_serial_no_retries_fails_but_keeps_siblings(self, tmp_path):
        tasks = [_task("ok", 0), _task("poisoned", 1), _task("ok", 2)]
        got = []
        with pytest.raises(ExperimentError, match="poisoned.*run 1"):
            for item in _run_tasks(tasks, _always_fail_task, 1, None, "t", retries=0):
                got.append(item)
        assert sorted(got) == [("ok", 0, "fine"), ("ok", 2, "fine")]

    def test_pool_retry_recovers(self, tmp_path):
        tasks = [_task("a", i, str(tmp_path)) for i in range(3)]
        out = list(
            _run_tasks(tasks, _fail_until_marker_task, 2, None, "t", retries=1)
        )
        assert sorted(r for __, __, r in out) == ["recovered"] * 3

    def test_pool_poisoned_task_isolated(self):
        tasks = [_task("ok", 0), _task("poisoned", 1), _task("ok", 2)]
        got = []
        with pytest.raises(ExperimentError, match="failed permanently"):
            for item in _run_tasks(
                tasks, _always_fail_task, 2, None, "t", retries=1
            ):
                got.append(item)
        assert sorted(got) == [("ok", 0, "fine"), ("ok", 2, "fine")]


class TestTimeouts:
    def test_overdue_task_resubmitted(self, tmp_path):
        tasks = [_task("slow", 0, str(tmp_path))]
        out = list(
            _run_tasks(
                tasks, _hang_until_marker_task, 2, None, "t",
                timeout=1.0, retries=1,
            )
        )
        assert out == [("slow", 0, "fast-second-try")]

    def test_overdue_task_without_retries_is_a_failure(self, tmp_path):
        (tmp_path / "slow-quick-1").write_text("")  # quick returns at once
        tasks = [_task("slow", 0, str(tmp_path)), _task("quick", 1, str(tmp_path))]
        got = []
        with pytest.raises(ExperimentError, match="no result within"):
            for item in _run_tasks(
                tasks, _hang_until_marker_task, 2, None, "t",
                timeout=1.0, retries=0,
            ):
                got.append(item)
        assert ("quick", 1, "fast-second-try") in got

    def test_worker_hard_crash_detected_and_retried(self, tmp_path):
        # os._exit(1) kills the worker outright; the Pool respawns the
        # process but silently never finishes the job, so the deadline
        # doubles as the crash detector.
        tasks = [_task("crashy", 0, str(tmp_path)), _task("crashy", 1, str(tmp_path))]
        out = list(
            _run_tasks(
                tasks, _die_until_marker_task, 2, None, "t",
                timeout=2.0, retries=1,
            )
        )
        assert sorted(out) == [("crashy", 0, "after-crash"), ("crashy", 1, "after-crash")]


class TestCheckpointResume:
    VARIANTS = {
        "a": RoutingWorldConfig(population=5, total_steps=20, converged_after=10)
    }

    def test_interrupted_sweep_resumes_without_recomputing(self, tmp_path, monkeypatch):
        first = run_routing_variants(
            ROUTING_NET, self.VARIANTS, runs=2, master_seed=4, checkpoint_dir=tmp_path
        )
        # Same command again, but the task function now explodes: every
        # result must come from the journal, so nothing actually runs.
        def exploding_task(task):
            raise AssertionError("checkpointed task was recomputed")

        monkeypatch.setattr(runner, "_routing_task", exploding_task)
        again = run_routing_variants(
            ROUTING_NET, self.VARIANTS, runs=2, master_seed=4, checkpoint_dir=tmp_path
        )
        assert [r.connectivity for r in first["a"].results] == [
            r.connectivity for r in again["a"].results
        ]

    def test_growing_runs_only_computes_the_new_ones(self, tmp_path, monkeypatch):
        run_routing_variants(
            ROUTING_NET, self.VARIANTS, runs=2, master_seed=4, checkpoint_dir=tmp_path
        )
        computed = []
        real_task = runner._routing_task

        def counting_task(task):
            computed.append(task[5])
            return real_task(task)

        monkeypatch.setattr(runner, "_routing_task", counting_task)
        grown = run_routing_variants(
            ROUTING_NET, self.VARIANTS, runs=3, master_seed=4, checkpoint_dir=tmp_path
        )
        assert computed == [2]  # runs 0 and 1 came from the journal
        assert len(grown["a"].results) == 3

    def test_changed_config_rejects_stale_checkpoint(self, tmp_path):
        run_routing_variants(
            ROUTING_NET, self.VARIANTS, runs=1, master_seed=4, checkpoint_dir=tmp_path
        )
        other = {
            "a": RoutingWorldConfig(population=6, total_steps=20, converged_after=10)
        }
        # A different config hashes to a different fingerprint, hence a
        # different journal file — no collision, a fresh sweep.
        run_routing_variants(
            ROUTING_NET, other, runs=1, master_seed=4, checkpoint_dir=tmp_path
        )
        assert len(list(pathlib.Path(tmp_path).glob("routing-*.jsonl"))) == 2

    def test_torn_trailing_line_tolerated(self, tmp_path):
        run_routing_variants(
            ROUTING_NET, self.VARIANTS, runs=2, master_seed=4, checkpoint_dir=tmp_path
        )
        journal = next(pathlib.Path(tmp_path).glob("routing-*.jsonl"))
        torn = journal.read_text()[:-40]  # kill landed mid-write
        journal.write_text(torn)
        resumed = run_routing_variants(
            ROUTING_NET, self.VARIANTS, runs=2, master_seed=4, checkpoint_dir=tmp_path
        )
        assert len(resumed["a"].results) == 2

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "x.jsonl"
        SweepCheckpoint(path, "routing", "aaaa")
        with pytest.raises(ExperimentError, match="different sweep"):
            SweepCheckpoint(path, "routing", "bbbb")


class TestTopologyCacheLRU:
    def test_cache_is_bounded(self):
        config = GeneratorConfig(node_count=5, target_edges=None,
                                 require_strong_connectivity=False)
        for seed in range(TOPOLOGY_CACHE_LIMIT + 4):
            _static_topology(config, seed, reusable=True)
        assert len(_topology_cache) == TOPOLOGY_CACHE_LIMIT
        # The oldest entries were evicted, the newest survive.
        cached_seeds = {key[1] for key in _topology_cache}
        assert cached_seeds == set(range(4, TOPOLOGY_CACHE_LIMIT + 4))

    def test_hit_refreshes_recency(self):
        config = GeneratorConfig(node_count=5, target_edges=None,
                                 require_strong_connectivity=False)
        for seed in range(TOPOLOGY_CACHE_LIMIT):
            _static_topology(config, seed, reusable=True)
        _static_topology(config, 0, reusable=True)  # touch the oldest
        _static_topology(config, TOPOLOGY_CACHE_LIMIT, reusable=True)  # evicts
        assert (config, 0) in _topology_cache
        assert (config, 1) not in _topology_cache
