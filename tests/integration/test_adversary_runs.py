"""Integration: adversarial runs, the defense plane, and its wiring.

The resilience layer's acceptance bar, scaled down to test size: on the
same seeded MANET under the same seeded adversary (gray-failed nodes
plus corrupted agents), a defended world delivers at least as many
payloads as an undefended one, defenses stay strictly opt-in, and every
knob reaches the runner/CLI surface.
"""

import pytest

from repro.experiments.persistence import (
    routing_result_from_dict,
    routing_result_to_dict,
)
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.runner import (
    clear_topology_cache,
    run_routing_variants,
    set_default_adversary,
    set_default_fault_plan,
    set_default_health,
    set_default_table_guard,
    set_default_workers,
)
from repro.faults.plan import AdversarySpec, FaultPlan
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.net.health import HealthConfig
from repro.routing.table import TableGuard
from repro.routing.world import RoutingWorldConfig, run_routing
from repro.traffic.plane import TrafficConfig

NET = GeneratorConfig(
    node_count=40,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=3,
    mobile_fraction=0.2,
)

# A seed where the defense layer's win is strict on this mini
# network (tiny payload samples make some seeds a wash either way).
SEED = 21

TRAFFIC = TrafficConfig(
    rate=1.0,
    payload_ttl=20,
    router="store-and-forward",
    start=10,
    stop=40,
)


@pytest.fixture(autouse=True)
def reset_runner_defaults():
    set_default_workers(1)
    set_default_fault_plan(None)
    set_default_adversary(None)
    set_default_health(None)
    set_default_table_guard(None)
    clear_topology_cache()
    yield
    set_default_workers(1)
    set_default_fault_plan(None)
    set_default_adversary(None)
    set_default_health(None)
    set_default_table_guard(None)
    clear_topology_cache()


def adversary_plan():
    return FaultPlan.random_adversary(
        SEED,
        node_count=NET.node_count,
        gray_fraction=0.25,
        gray_rate=0.95,
        corrupt_agents=2,
        population=10,
        exclude=(0, 1, 2),
    )


def world_config(defended, plan=None):
    return RoutingWorldConfig(
        population=10,
        total_steps=60,
        converged_after=30,
        fault_plan=plan,
        health=HealthConfig() if defended else None,
        table_guard=TableGuard() if defended else None,
        check_invariants=True,
        traffic=TRAFFIC,
    )


def run_arm(defended, plan=None, seed=SEED):
    topology = NetworkGenerator(NET, seed).generate_manet()
    return run_routing(topology, world_config(defended, plan), seed)


class TestDefenseUnderAdversary:
    def test_defended_delivers_at_least_as_much(self):
        plan = adversary_plan()
        defended = run_arm(True, plan)
        undefended = run_arm(False, plan)
        assert (
            defended.traffic.delivery_ratio >= undefended.traffic.delivery_ratio
        )

    def test_defenses_actually_engage(self):
        defended = run_arm(True, adversary_plan())
        assert defended.health is not None
        assert defended.health.quarantines > 0
        assert defended.guard_rejections > 0

    def test_undefended_world_reports_no_health(self):
        undefended = run_arm(False, adversary_plan())
        assert undefended.health is None
        assert undefended.guard_rejections == 0

    def test_invariants_hold_with_defenses_on(self):
        # world_config forces check_invariants=True; a violation raises,
        # so completing the run certifies the quarantine-never-isolates
        # and guard-conservation checks.
        run_arm(True, adversary_plan())


class TestDisabledModeDeterminism:
    def test_same_seed_reruns_bit_identical_without_defenses(self):
        first = run_arm(False)
        second = run_arm(False)
        assert first.connectivity == second.connectivity
        assert first.traffic.to_dict() == second.traffic.to_dict()
        assert first.overhead == second.overhead

    def test_same_seed_reruns_bit_identical_with_defenses(self):
        plan = adversary_plan()
        first = run_arm(True, plan)
        second = run_arm(True, plan)
        assert first.connectivity == second.connectivity
        assert first.traffic.to_dict() == second.traffic.to_dict()
        assert first.health.to_dict() == second.health.to_dict()
        assert first.guard_rejections == second.guard_rejections


class TestRunnerDefaultInjection:
    def test_adversary_and_defenses_materialize_into_variants(self):
        set_default_adversary(
            AdversarySpec(gray_fraction=0.2, gray_rate=0.9, corrupt_agents=2)
        )
        set_default_health(HealthConfig())
        set_default_table_guard(TableGuard())
        variants = {
            "base": RoutingWorldConfig(
                population=8,
                total_steps=40,
                converged_after=20,
                traffic=TRAFFIC,
            )
        }
        outcomes = run_routing_variants(NET, variants, runs=1, master_seed=5)
        result = outcomes["base"].results[0]
        assert result.health is not None

    def test_variant_supplied_plan_wins_over_adversary_default(self):
        set_default_adversary(AdversarySpec(gray_fraction=0.9, gray_rate=1.0))
        explicit = FaultPlan().gray_failure(10, 5, rate=0.5)
        variants = {
            "own-plan": RoutingWorldConfig(
                population=8,
                total_steps=30,
                converged_after=15,
                fault_plan=explicit,
            )
        }
        # Completing without the 90%-gray meltdown shows the explicit
        # plan rode through; the runner asserts nothing louder here.
        outcomes = run_routing_variants(NET, variants, runs=1, master_seed=5)
        assert outcomes["own-plan"].results[0].health is None


class TestPersistenceRoundTrip:
    def test_defended_result_round_trips(self):
        result = run_arm(True, adversary_plan())
        payload = routing_result_to_dict(result)
        assert payload["guard_rejections"] == result.guard_rejections
        restored = routing_result_from_dict(payload)
        assert restored.guard_rejections == result.guard_rejections
        assert restored.health == result.health
        assert restored.traffic.to_dict() == result.traffic.to_dict()
        assert restored.connectivity == result.connectivity

    def test_legacy_payload_defaults_guard_rejections_to_zero(self):
        result = run_arm(False)
        payload = routing_result_to_dict(result)
        del payload["guard_rejections"]
        assert routing_result_from_dict(payload).guard_rejections == 0


class TestSurface:
    def test_adversary1_is_registered(self):
        ids = [e.experiment_id for e in list_experiments()]
        assert "adversary1" in ids
        assert get_experiment("adversary1").scenario == "routing"

    def test_cli_parses_adversary_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "adversary1", "--adversary", "0.2", "--quarantine"]
        )
        assert args.adversary == "0.2"
        assert args.quarantine is True
