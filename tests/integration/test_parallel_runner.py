"""Integration: the process-pool runner is bit-identical to serial."""

import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    clear_topology_cache,
    run_mapping_variants,
    run_routing_variants,
    set_default_workers,
)
from repro.mapping.world import MappingWorldConfig
from repro.net.generator import GeneratorConfig
from repro.routing.world import RoutingWorldConfig

MAPPING_NET = GeneratorConfig(
    node_count=30, target_edges=None, require_strong_connectivity=True
)
ROUTING_NET = GeneratorConfig(
    node_count=40,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=3,
    mobile_fraction=0.5,
)


@pytest.fixture(autouse=True)
def reset_default_workers():
    set_default_workers(1)
    clear_topology_cache()
    yield
    set_default_workers(1)
    clear_topology_cache()


class TestParallelMapping:
    def test_matches_serial(self):
        variants = {
            "a": MappingWorldConfig(population=3, max_steps=2000),
            "b": MappingWorldConfig(population=3, stigmergic=True, max_steps=2000),
        }
        serial = run_mapping_variants(MAPPING_NET, variants, runs=4, master_seed=5)
        clear_topology_cache()
        parallel = run_mapping_variants(
            MAPPING_NET, variants, runs=4, master_seed=5, workers=2
        )
        for name in variants:
            assert serial[name].finishing_times == parallel[name].finishing_times
            assert [r.average_knowledge for r in serial[name].results] == [
                r.average_knowledge for r in parallel[name].results
            ]

    def test_progress_counts_tasks(self):
        calls = []
        run_mapping_variants(
            MAPPING_NET,
            {"a": MappingWorldConfig(population=2, max_steps=2000)},
            runs=3,
            master_seed=5,
            progress=lambda s, d, t: calls.append((s, d, t)),
            workers=2,
        )
        assert calls == [("mapping", 1, 3), ("mapping", 2, 3), ("mapping", 3, 3)]


class TestParallelRouting:
    def test_matches_serial(self):
        variants = {
            "oldest": RoutingWorldConfig(
                population=8, total_steps=40, converged_after=20
            ),
            "random": RoutingWorldConfig(
                agent_kind="random", population=8, total_steps=40, converged_after=20
            ),
        }
        serial = run_routing_variants(ROUTING_NET, variants, runs=3, master_seed=6)
        parallel = run_routing_variants(
            ROUTING_NET, variants, runs=3, master_seed=6, workers=2
        )
        for name in variants:
            assert [r.connectivity for r in serial[name].results] == [
                r.connectivity for r in parallel[name].results
            ]


class TestWorkerValidation:
    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            set_default_workers(0)
        with pytest.raises(ConfigurationError):
            run_routing_variants(
                ROUTING_NET,
                {"a": RoutingWorldConfig(population=2, total_steps=5, converged_after=2)},
                runs=1,
                master_seed=1,
                workers=0,
            )

    def test_workers_capped_at_cpu_count(self):
        from repro.experiments.runner import _resolve_workers

        assert _resolve_workers(10_000) == max(2, multiprocessing.cpu_count())
