"""Integration: lossy-channel runs are deterministic and degrade gracefully.

The acceptance bars from the channel subsystem's design:

* ``loss=0`` is a true no-op — bit-identical to a run with no channel
  configured at all, so every pre-existing seeded experiment is safe,
* the same seed and loss config produce identical results serially and
  across pool workers, and compose deterministically with a fault plan,
* higher loss cannot *help*: connectivity under heavy loss stays at or
  below the lossless baseline,
* a respawned agent restarts its retry/backoff state but keeps its
  whole-run overhead meter.
"""

import pytest

from repro.core.migration import MigrationState
from repro.experiments.runner import (
    clear_topology_cache,
    run_mapping_variants,
    run_routing_variants,
    set_default_channel,
    set_default_check_invariants,
    set_default_fault_plan,
    set_default_route_ttl,
    set_default_workers,
)
from repro.faults.plan import FaultPlan
from repro.mapping.world import MappingWorld, MappingWorldConfig, run_mapping
from repro.net.channel import ChannelConfig
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.routing.world import RoutingWorld, RoutingWorldConfig, run_routing

ROUTING_NET = GeneratorConfig(
    node_count=40,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=3,
    mobile_fraction=0.5,
)
MAPPING_NET = GeneratorConfig(
    node_count=25, target_edges=None, require_strong_connectivity=True
)


@pytest.fixture(autouse=True)
def reset_runner_defaults():
    def reset():
        set_default_workers(1)
        set_default_fault_plan(None)
        set_default_channel(None)
        set_default_route_ttl(None)
        set_default_check_invariants(None)
        clear_topology_cache()

    reset()
    yield
    reset()


def routing_config(**overrides):
    defaults = dict(population=8, total_steps=50, converged_after=25)
    defaults.update(overrides)
    return RoutingWorldConfig(**defaults)


def mapping_config(**overrides):
    defaults = dict(
        agent_kind="conscientious", population=4, stigmergic=True, max_steps=4000
    )
    defaults.update(overrides)
    return MappingWorldConfig(**defaults)


def routing_fingerprint(result):
    return (result.connectivity, result.meetings, result.overhead)


def mapping_fingerprint(result):
    return (
        result.finishing_time,
        result.steps_simulated,
        result.average_knowledge,
        result.meetings,
        result.overhead,
    )


def make_manet(seed=13):
    return NetworkGenerator(ROUTING_NET, seed=seed).generate_manet()


class TestZeroLossIsANoOp:
    """The satellite regression: channel disabled vs ``loss=0``."""

    def test_routing_bit_identical(self):
        baseline = run_routing(make_manet(), routing_config(channel=None), seed=21)
        zero = run_routing(
            make_manet(), routing_config(channel=ChannelConfig(loss=0.0)), seed=21
        )
        assert routing_fingerprint(baseline) == routing_fingerprint(zero)

    def test_mapping_bit_identical(self):
        topology = NetworkGenerator(MAPPING_NET, seed=31).generate_static()
        baseline = run_mapping(topology, mapping_config(channel=None), seed=8)
        topology = NetworkGenerator(MAPPING_NET, seed=31).generate_static()
        zero = run_mapping(
            topology, mapping_config(channel=ChannelConfig(loss=0.0)), seed=8
        )
        assert mapping_fingerprint(baseline) == mapping_fingerprint(zero)

    def test_zero_loss_draws_nothing(self):
        world = RoutingWorld(
            make_manet(), routing_config(channel=ChannelConfig(loss=0.0)), seed=21
        )
        world.run()
        assert world.channel.stats.attempts > 0
        assert world.channel.stats.losses == 0


class TestLossyRunDeterminism:
    def test_same_seed_same_lossy_run(self):
        config = routing_config(channel=ChannelConfig(loss=0.3))
        first = run_routing(make_manet(), config, seed=5)
        second = run_routing(make_manet(), config, seed=5)
        assert routing_fingerprint(first) == routing_fingerprint(second)

    def test_routing_serial_vs_pool_bit_identical(self):
        variants = {"lossy": routing_config(channel=ChannelConfig(loss=0.25))}
        serial = run_routing_variants(ROUTING_NET, variants, runs=3, master_seed=6)
        pooled = run_routing_variants(
            ROUTING_NET, variants, runs=3, master_seed=6, workers=4
        )
        assert [routing_fingerprint(r) for r in serial["lossy"].results] == [
            routing_fingerprint(r) for r in pooled["lossy"].results
        ]

    def test_mapping_serial_vs_pool_bit_identical(self):
        variants = {
            "lossy": mapping_config(channel=ChannelConfig(loss=0.2, hop_retries=2))
        }
        serial = run_mapping_variants(MAPPING_NET, variants, runs=3, master_seed=7)
        pooled = run_mapping_variants(
            MAPPING_NET, variants, runs=3, master_seed=7, workers=4
        )
        assert [mapping_fingerprint(r) for r in serial["lossy"].results] == [
            mapping_fingerprint(r) for r in pooled["lossy"].results
        ]

    def test_loss_composes_deterministically_with_faults(self):
        plan = (
            FaultPlan(agent_policy="respawn")
            .crash(15, 3)
            .recover(30, 3)
            .loss_burst(20, 5, 0.8)
            .loss_clear(35, 5)
        )
        config = routing_config(
            channel=ChannelConfig(loss=0.2), fault_plan=plan, total_steps=60,
            converged_after=30,
        )
        first = run_routing(make_manet(), config, seed=9)
        second = run_routing(make_manet(), config, seed=9)
        assert routing_fingerprint(first) == routing_fingerprint(second)

    def test_runner_default_channel_applies_to_unset_variants(self):
        set_default_channel(ChannelConfig(loss=0.4))
        variants = {"plain": routing_config()}
        lossy = run_routing_variants(ROUTING_NET, variants, runs=2, master_seed=6)
        set_default_channel(None)
        baseline = run_routing_variants(ROUTING_NET, variants, runs=2, master_seed=6)
        assert [r.connectivity for r in lossy["plain"].results] != [
            r.connectivity for r in baseline["plain"].results
        ]


class TestGracefulDegradation:
    def test_heavy_loss_never_beats_lossless(self):
        lossless = run_routing(make_manet(), routing_config(), seed=11)
        heavy = run_routing(
            make_manet(), routing_config(channel=ChannelConfig(loss=0.6)), seed=11
        )
        assert heavy.mean_connectivity <= lossless.mean_connectivity + 1e-9
        assert lossless.mean_connectivity > 0.1

    def test_lossy_hops_are_accounted(self):
        world = RoutingWorld(
            make_manet(), routing_config(channel=ChannelConfig(loss=0.4)), seed=11
        )
        world.run()
        overhead = {}
        for agent in world.agents:
            for key, value in agent.overhead.as_dict().items():
                overhead[key] = overhead.get(key, 0) + value
        assert overhead["hops_lost"] > 0
        assert overhead["hop_retries"] > 0
        assert overhead["hops_attempted"] > overhead["hops_lost"]

    def test_invariants_hold_under_heavy_loss_and_faults(self):
        plan = FaultPlan(agent_policy="respawn").crash(10, 2).loss_burst(12, 4, 0.9)
        world = RoutingWorld(
            make_manet(),
            routing_config(
                channel=ChannelConfig(loss=0.5),
                fault_plan=plan,
                check_invariants=True,
            ),
            seed=14,
        )
        world.run()  # InvariantError would propagate
        assert world.invariants.checks == world.config.total_steps
        assert world.invariants.violations == []


class TestRespawnResetsMigrationState:
    """The satellite audit: death-in-transit must not leak backoff state."""

    def _pending_state(self):
        state = MigrationState()
        state.target = 3
        state.failures = 2
        state.retry_at = 40
        return state

    def test_routing_agent(self):
        world = RoutingWorld(make_manet(), routing_config(), seed=2)
        agent = world.agents[0]
        agent.migration = self._pending_state()
        agent.overhead.hops_lost = 5
        agent.overhead.hop_retries = 4
        agent.reset_for_respawn(start=0, time=20)
        assert agent.migration == MigrationState()
        assert agent.location == 0
        # The overhead meter accounts for the whole run, respawns included.
        assert agent.overhead.hops_lost == 5
        assert agent.overhead.hop_retries == 4

    def test_mapping_agent(self):
        topology = NetworkGenerator(MAPPING_NET, seed=31).generate_static()
        world = MappingWorld(topology, mapping_config(), seed=2)
        agent = world.agents[0]
        agent.migration = self._pending_state()
        agent.overhead.hops_abandoned = 3
        agent.reset_for_respawn(start=0, time=20)
        assert agent.migration == MigrationState()
        assert agent.overhead.hops_abandoned == 3
