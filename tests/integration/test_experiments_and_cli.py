"""Integration: every registered experiment runs end-to-end at quick scale,
and the CLI drives them."""

import pytest

from repro.cli import main
from repro.experiments import QUICK, get_experiment, list_experiments
from repro.experiments.config import Scale
from repro.experiments.runner import clear_topology_cache

# An even smaller scale than QUICK so running all 14 experiments stays fast.
TINY = Scale(
    name="tiny",
    runs=2,
    mapping_nodes=25,
    mapping_target_edges=None,
    mapping_max_steps=4_000,
    populations=(1, 4),
    team_population=4,
    routing_nodes=30,
    routing_gateways=3,
    routing_population=8,
    routing_steps=40,
    routing_converged_after=20,
    routing_populations=(4, 10),
    history_sizes=(2, 8),
    default_history=6,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_topology_cache()
    yield
    clear_topology_cache()


class TestAllExperiments:
    @pytest.mark.parametrize(
        "experiment_id", [e.experiment_id for e in list_experiments()]
    )
    def test_runs_and_renders(self, experiment_id):
        experiment = get_experiment(experiment_id)
        report = experiment.run(TINY, master_seed=42)
        assert report.experiment_id == experiment_id
        assert report.rows, "every experiment reports at least one row"
        text = report.render()
        assert experiment_id in text
        assert "paper claim" in text

    def test_reports_are_deterministic(self):
        first = get_experiment("fig1").run(TINY, master_seed=7).render()
        clear_topology_cache()
        second = get_experiment("fig1").run(TINY, master_seed=7).render()
        assert first == second

    def test_master_seed_changes_results(self):
        first = get_experiment("fig7").run(TINY, master_seed=1).render()
        second = get_experiment("fig7").run(TINY, master_seed=2).render()
        assert first != second


class TestProgressCallback:
    def test_progress_reported_per_run(self):
        calls = []
        get_experiment("fig3").run(
            TINY, master_seed=42, progress=lambda s, d, t: calls.append((s, d, t))
        )
        assert calls == [("mapping", 1, 2), ("mapping", 2, 2)]


class TestCli:
    def test_cli_quick_run(self, capsys, monkeypatch):
        # Patch QUICK usage by running the tiniest real experiment id at
        # quick scale would be slow; fig1 at QUICK is the fastest mapping
        # experiment and completes in seconds.
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module, "QUICK", TINY)
        assert main(["run", "fig1", "--quiet", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "scale=tiny" in out
