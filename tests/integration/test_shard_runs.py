"""Integration: sharded runs — process mode, obs parity, runner plumbing."""

import pytest

np = pytest.importorskip("numpy")

from dataclasses import replace

from repro.errors import ConfigurationError
from repro.experiments import get_experiment
from repro.experiments.config import Scale
from repro.experiments.runner import clear_topology_cache, set_default_shards
from repro.net.channel import ChannelConfig
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.obs.collector import ObsConfig
from repro.routing.world import RoutingWorld, RoutingWorldConfig
from repro.shard.world import ShardedRoutingWorld, run_sharded_routing

# Module-level configs: the process-mode test pickles these into spawned
# workers, so they must be importable, not test-local closures.
GC = GeneratorConfig(
    node_count=60,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=6,
    mobile_fraction=0.5,
)
CFG = RoutingWorldConfig(
    agent_kind="oldest-node",
    population=16,
    visiting=True,
    stigmergic=True,
    route_ttl=40,
    total_steps=25,
    converged_after=12,
    channel=ChannelConfig(loss=0.05, distance_factor=0.3),
    check_invariants=False,
    batch_agents=False,
)
NS, WS = 4242, 17

TINY = Scale(
    name="tiny",
    runs=2,
    mapping_nodes=25,
    mapping_target_edges=None,
    mapping_max_steps=4_000,
    populations=(1, 4),
    team_population=4,
    routing_nodes=30,
    routing_gateways=3,
    routing_population=8,
    routing_steps=40,
    routing_converged_after=20,
    routing_populations=(4, 10),
    history_sizes=(2, 8),
    default_history=6,
)


@pytest.fixture(autouse=True)
def reset_shard_defaults():
    set_default_shards(None)
    clear_topology_cache()
    yield
    set_default_shards(None)
    clear_topology_cache()


def run_serial(config):
    topology = NetworkGenerator(GC, NS).generate_manet()
    return RoutingWorld(topology, config, WS).run()


class TestProcessMode:
    def test_spawned_workers_match_serial(self):
        expected = run_serial(CFG)
        actual = run_sharded_routing(
            GC, replace(CFG, shards=4), NS, WS, processes=True
        )
        assert actual.times == expected.times
        assert actual.connectivity == expected.connectivity
        assert actual.meetings == expected.meetings
        assert actual.overhead == expected.overhead
        assert actual.guard_rejections == expected.guard_rejections


class TestObsParity:
    def test_metrics_snapshots_are_identical(self):
        obs = ObsConfig(metrics=True)
        expected = run_serial(replace(CFG, obs=obs))
        actual = run_sharded_routing(GC, replace(CFG, obs=obs, shards=4), NS, WS)
        assert expected.obs is not None and actual.obs is not None
        assert actual.obs.to_dict() == expected.obs.to_dict()


class TestSupportGate:
    @pytest.mark.parametrize(
        "changes",
        [
            {"batch_agents": True},
            {"check_invariants": True},
            {"agent_kind": "stigmergic"},
            {"obs": ObsConfig(metrics=True, events=True)},
        ],
    )
    def test_out_of_scope_configs_rejected(self, changes):
        with pytest.raises(ConfigurationError):
            ShardedRoutingWorld(
                GC, replace(CFG, shards=2, **changes), NS, WS
            )

    def test_close_is_idempotent(self):
        world = ShardedRoutingWorld(GC, replace(CFG, shards=2), NS, WS)
        world.close()
        world.close()


class TestRunnerPlumbing:
    def test_shard_default_reproduces_the_serial_report(self):
        serial = get_experiment("fig7").run(TINY, master_seed=11).render()
        clear_topology_cache()
        set_default_shards(2)
        sharded = get_experiment("fig7").run(TINY, master_seed=11).render()
        assert sharded == serial

    def test_bad_shard_defaults_rejected(self):
        with pytest.raises(ConfigurationError):
            set_default_shards(0)
        with pytest.raises(ConfigurationError):
            set_default_shards(2, tile_size=-1.0)


class TestCliFlag:
    def test_run_with_shards_flag(self, capsys, monkeypatch):
        import repro.cli as cli_module
        from repro.cli import main

        monkeypatch.setattr(cli_module, "QUICK", TINY)
        assert main(["run", "fig7", "--quiet", "--no-plot", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
