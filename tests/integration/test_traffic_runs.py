"""Integration: the DTN data plane rides full runs without disturbing them.

The acceptance bars from ISSUE 6:

* ``traffic=None`` (the default) builds nothing — attaching a workload
  must not perturb the control plane's seeded streams either,
* identical seeds produce identical :class:`TrafficReport`s, serially
  and across pool workers,
* payload conservation (generated == delivered + expired + dropped +
  in-flight + buffered) holds after every step even under fault churn
  and loss bursts — enforced by the invariant checker,
* the mapping world runs the table-less routers (and degrades a
  store-and-forward request to epidemic instead of refusing),
* traffic reports survive the checkpoint-journal round trip.
"""

import pytest

from repro.experiments.runner import (
    clear_topology_cache,
    run_routing_variants,
    set_default_channel,
    set_default_check_invariants,
    set_default_fault_plan,
    set_default_traffic,
    set_default_workers,
)
from repro.faults.plan import FaultPlan
from repro.mapping.world import MappingWorldConfig, run_mapping
from repro.net.channel import ChannelConfig
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.routing.world import RoutingWorldConfig, run_routing
from repro.traffic.plane import TrafficConfig

ROUTING_NET = GeneratorConfig(
    node_count=40,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=3,
    mobile_fraction=0.5,
)
MAPPING_NET = GeneratorConfig(
    node_count=25, target_edges=None, require_strong_connectivity=True
)


@pytest.fixture(autouse=True)
def reset_runner_defaults():
    def reset():
        set_default_workers(1)
        set_default_fault_plan(None)
        set_default_channel(None)
        set_default_traffic(None)
        set_default_check_invariants(None)
        clear_topology_cache()

    reset()
    yield
    reset()


def make_manet(seed=13):
    return NetworkGenerator(ROUTING_NET, seed=seed).generate_manet()


def routing_config(**overrides):
    defaults = dict(population=8, total_steps=50, converged_after=25)
    defaults.update(overrides)
    return RoutingWorldConfig(**defaults)


def control_fingerprint(result):
    return (result.connectivity, result.meetings, result.overhead)


def conservation_holds(report):
    return report.generated == (
        report.delivered
        + report.expired
        + report.dropped
        + report.in_flight
        + report.buffered
    )


class TestTrafficIsAnOverlay:
    def test_attaching_traffic_leaves_control_plane_untouched(self):
        baseline = run_routing(make_manet(), routing_config(), seed=21)
        with_traffic = run_routing(
            make_manet(),
            routing_config(traffic=TrafficConfig(rate=1.0)),
            seed=21,
        )
        assert control_fingerprint(baseline) == control_fingerprint(with_traffic)
        assert baseline.traffic is None
        assert with_traffic.traffic is not None
        assert with_traffic.traffic.generated > 0

    def test_same_seed_same_traffic_report(self):
        config = routing_config(
            channel=ChannelConfig(loss=0.3),
            traffic=TrafficConfig(rate=1.0),
        )
        first = run_routing(make_manet(), config, seed=5)
        second = run_routing(make_manet(), config, seed=5)
        assert first.traffic == second.traffic

    def test_serial_vs_pool_identical_traffic_reports(self):
        variants = {
            "dtn": routing_config(
                channel=ChannelConfig(loss=0.25),
                traffic=TrafficConfig(rate=1.0, router="spray-and-wait"),
            )
        }
        serial = run_routing_variants(ROUTING_NET, variants, runs=3, master_seed=6)
        pooled = run_routing_variants(
            ROUTING_NET, variants, runs=3, master_seed=6, workers=4
        )
        assert [r.traffic for r in serial["dtn"].results] == [
            r.traffic for r in pooled["dtn"].results
        ]

    def test_runner_default_traffic_applies_to_unset_variants(self):
        set_default_traffic(TrafficConfig(rate=1.0, router="epidemic"))
        outcome = run_routing_variants(
            ROUTING_NET, {"plain": routing_config()}, runs=2, master_seed=6
        )
        for result in outcome["plain"].results:
            assert result.traffic is not None
            assert result.traffic.router == "epidemic"
            assert conservation_holds(result.traffic)


class TestConservationUnderFaults:
    @pytest.mark.parametrize(
        "router", ["store-and-forward", "epidemic", "spray-and-wait"]
    )
    def test_churn_loss_bursts_and_invariants(self, router):
        plan = (
            FaultPlan(agent_policy="respawn")
            .crash(10, 3)
            .loss_burst(15, 4, 0.9)
            .recover(25, 3)
            .loss_clear(32, 4)
        )
        config = routing_config(
            total_steps=60,
            converged_after=30,
            channel=ChannelConfig(loss=0.3),
            fault_plan=plan,
            traffic=TrafficConfig(rate=1.0, router=router, payload_ttl=40),
            check_invariants=True,
        )
        result = run_routing(make_manet(), config, seed=14)
        report = result.traffic
        assert report.generated > 20
        assert report.delivered > 0
        assert conservation_holds(report)

    def test_crash_strands_copies_but_loses_none(self):
        plan = FaultPlan(agent_policy="respawn").crash(20, 8).recover(40, 8)
        config = routing_config(
            total_steps=70,
            converged_after=35,
            fault_plan=plan,
            traffic=TrafficConfig(rate=2.0, payload_ttl=200),
            check_invariants=True,
        )
        result = run_routing(make_manet(), config, seed=3)
        report = result.traffic
        assert conservation_holds(report)
        # whatever a crash stranded was delayed, never silently destroyed
        assert report.dropped == (
            report.counters["overflow_drops"] + report.counters["source_drops"]
        )


class TestMappingWorldTraffic:
    def _config(self, **traffic_overrides):
        settings = dict(rate=0.5, router="epidemic", payload_ttl=100)
        settings.update(traffic_overrides)
        traffic = TrafficConfig(**settings)
        return MappingWorldConfig(
            agent_kind="conscientious",
            population=4,
            stigmergic=True,
            max_steps=2000,
            traffic=traffic,
            check_invariants=True,
        )

    def test_epidemic_unicast_smoke(self):
        topology = NetworkGenerator(MAPPING_NET, seed=31).generate_static()
        result = run_mapping(topology, self._config(), seed=8)
        report = result.traffic
        assert report is not None
        assert report.generated > 0
        assert report.delivered > 0
        assert conservation_holds(report)

    def test_store_and_forward_degrades_to_epidemic(self):
        topology = NetworkGenerator(MAPPING_NET, seed=31).generate_static()
        result = run_mapping(
            topology, self._config(router="store-and-forward"), seed=8
        )
        assert result.traffic.router == "epidemic"
        assert conservation_holds(result.traffic)


class TestTrafficPersistence:
    def test_routing_result_roundtrip_keeps_traffic(self):
        from repro.experiments.persistence import (
            routing_result_from_dict,
            routing_result_to_dict,
        )

        config = routing_config(traffic=TrafficConfig(rate=1.0))
        result = run_routing(make_manet(), config, seed=5)
        rebuilt = routing_result_from_dict(routing_result_to_dict(result))
        assert rebuilt.traffic == result.traffic

    def test_checkpoint_resume_reuses_traffic_results(self, tmp_path):
        variants = {"dtn": routing_config(traffic=TrafficConfig(rate=1.0))}
        first = run_routing_variants(
            ROUTING_NET,
            variants,
            runs=2,
            master_seed=6,
            checkpoint_dir=tmp_path,
        )
        resumed = run_routing_variants(
            ROUTING_NET,
            variants,
            runs=2,
            master_seed=6,
            checkpoint_dir=tmp_path,
        )
        assert [r.traffic for r in first["dtn"].results] == [
            r.traffic for r in resumed["dtn"].results
        ]


class TestTrafficObservability:
    def test_obs_metrics_mirror_the_traffic_report(self):
        from repro.obs import ObsConfig

        config = routing_config(
            traffic=TrafficConfig(rate=1.0),
            obs=ObsConfig(metrics=True),
        )
        result = run_routing(make_manet(), config, seed=5)
        report = result.traffic
        metrics = result.obs.metrics
        counters = metrics["counters"]
        for name in (
            "generated", "delivered", "expired", "dropped",
            "in_flight", "buffered",
        ):
            assert counters[f"traffic.{name}"] == getattr(report, name)
        assert counters["traffic.latency.overflow"] == report.latency_counts[-1]
        assert "traffic.buffered.series" in metrics["rings"]
