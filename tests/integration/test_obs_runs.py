"""Integration: observability is zero-impact off, deterministic on.

The contract under test:

* obs off (the default) produces bit-identical core results to obs on —
  the collector touches no RNG and no simulation state;
* merged metrics and traces are identical between serial and pooled
  sweeps;
* the CLI flags produce a manifest-carrying metrics JSON, a
  schema-versioned JSONL trace, and per-phase percentile tables;
* per-run reports survive the checkpoint-journal round-trip.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.persistence import (
    routing_result_from_dict,
    routing_result_to_dict,
)
from repro.experiments.runner import (
    clear_topology_cache,
    run_routing_variants,
    set_default_obs,
    set_default_workers,
)
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.obs import EVENT_SCHEMA, ObsAccumulator, ObsConfig, read_jsonl
from repro.obs.output import METRICS_FILE_SCHEMA
from repro.routing.world import RoutingWorld, RoutingWorldConfig

ROUTING_NET = GeneratorConfig(
    node_count=40,
    target_edges=None,
    require_strong_connectivity=False,
    gateway_count=3,
    mobile_fraction=0.5,
)

FULL_OBS = ObsConfig(metrics=True, events=True, profile=True)


@pytest.fixture(autouse=True)
def reset_runner_defaults():
    set_default_workers(1)
    set_default_obs(None, None)
    clear_topology_cache()
    yield
    set_default_workers(1)
    set_default_obs(None, None)
    clear_topology_cache()


def _world_result(obs):
    topology = NetworkGenerator(ROUTING_NET, 11).generate_manet()
    config = RoutingWorldConfig(
        population=10, total_steps=30, converged_after=10, obs=obs
    )
    return RoutingWorld(topology, config, 13).run()


class TestZeroOverheadContract:
    def test_obs_on_never_changes_core_results(self):
        plain = _world_result(None)
        observed = _world_result(FULL_OBS)
        assert plain.obs is None and observed.obs is not None
        assert observed.times == plain.times
        assert observed.connectivity == plain.connectivity
        assert observed.meetings == plain.meetings
        assert observed.overhead == plain.overhead

    def test_disabled_config_builds_no_collector(self):
        result = _world_result(ObsConfig())  # all layers off
        assert result.obs is None


class TestSerialVsPooled:
    def _sweep(self, workers):
        accumulator = ObsAccumulator()
        accumulator.start_experiment("exp")
        set_default_obs(ObsConfig(metrics=True, events=True), accumulator)
        variants = {
            "plain": RoutingWorldConfig(
                population=6, total_steps=20, converged_after=5
            ),
            "stig": RoutingWorldConfig(
                population=6, total_steps=20, converged_after=5, stigmergic=True
            ),
        }
        run_routing_variants(
            ROUTING_NET, variants, runs=3, master_seed=5, workers=workers
        )
        return accumulator

    def test_merged_obs_identical_across_worker_counts(self, tmp_path):
        serial = self._sweep(workers=1)
        pooled = self._sweep(workers=2)
        assert len(serial) == len(pooled) == 6
        assert serial.merged_metrics("exp") == pooled.merged_metrics("exp")
        manifest = {"pin": 1}
        serial_trace = serial.write_trace(tmp_path / "serial.jsonl", manifest)
        pooled_trace = pooled.write_trace(tmp_path / "pooled.jsonl", manifest)
        assert serial_trace.read_text() == pooled_trace.read_text()

    def test_merged_counters_cover_overhead_and_channel(self):
        accumulator = self._sweep(workers=1)
        counters = accumulator.merged_metrics("exp")["counters"]
        assert counters["runs"] == 6
        assert counters["overhead.decisions"] > 0
        assert counters["channel.attempts"] > 0
        assert "overhead.meetings" in counters


class TestCheckpointRoundTrip:
    def test_obs_report_survives_result_serialization(self):
        result = _world_result(FULL_OBS)
        payload = routing_result_to_dict(result)
        assert json.loads(json.dumps(payload)) == payload
        restored = routing_result_from_dict(payload)
        assert restored.obs is not None
        assert restored.obs.metrics == result.obs.metrics
        assert restored.obs.events == result.obs.events
        assert restored.obs.profile == result.obs.profile

    def test_obs_free_result_round_trips_to_none(self):
        payload = routing_result_to_dict(_world_result(None))
        assert payload["obs"] is None
        assert routing_result_from_dict(payload).obs is None


class TestCliEndToEnd:
    def test_run_with_all_obs_flags(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        code = main(
            [
                "run",
                "fig7",
                "--runs",
                "2",
                "--quiet",
                "--no-plot",
                "--profile",
                "--metrics-out",
                str(metrics_path),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p99_us" in out  # the percentile table was printed

        document = json.loads(metrics_path.read_text())
        assert document["schema"] == METRICS_FILE_SCHEMA
        manifest = document["manifest"]
        assert manifest["master_seed"] == 2010
        assert manifest["experiments"] == ["fig7"]
        for key in ("config_hash", "package_version", "platform", "created_at"):
            assert key in manifest

        block = document["experiments"]["fig7"]
        counters = block["metrics"]["counters"]
        assert counters["runs"] > 0
        assert counters["overhead.decisions"] > 0
        assert counters["channel.attempts"] > 0
        assert counters["agents.hops"] > 0
        assert "connectivity.series" in block["metrics"]["rings"]
        assert "step" in block["profile"] and "move" in block["profile"]

        header, events = read_jsonl(trace_path)
        assert header["schema"] == EVENT_SCHEMA
        assert header["manifest"]["experiments"] == ["fig7"]
        assert events, "trace must contain events"
        raw_lines = trace_path.read_text().splitlines()[1:]
        first = json.loads(raw_lines[0])
        for key in ("experiment", "scenario", "variant", "run", "seq"):
            assert key in first

    def test_obs_flags_off_leave_reports_unchanged(self, tmp_path):
        plain_dir = tmp_path / "plain"
        obs_dir = tmp_path / "obs"
        assert main(
            ["run", "fig7", "--runs", "2", "--quiet", "--no-plot",
             "--json-dir", str(plain_dir)]
        ) == 0
        assert main(
            ["run", "fig7", "--runs", "2", "--quiet", "--no-plot",
             "--json-dir", str(obs_dir),
             "--metrics-out", str(tmp_path / "m.json"), "--profile"]
        ) == 0
        plain = (plain_dir / "fig7.json").read_text()
        observed = (obs_dir / "fig7.json").read_text()
        assert observed == plain
