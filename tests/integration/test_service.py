"""Integration: the service layer end to end.

The acceptance bar for the service plane:

* a spec submitted through the queue produces a report **bit-identical**
  to the same experiment invoked directly (the service adds provenance,
  never perturbs results);
* a job that crashes mid-sweep and is requeued **resumes** from its
  checkpoint directory instead of restarting;
* cancellation lands at a task boundary and leaves completed work
  journalled;
* the CLI front ends (submit / serve / jobs / cancel / export /
  calibrate / list --json) drive the same machinery.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.experiments import runner
from repro.experiments.config import QUICK
from repro.experiments.persistence import load_report, report_to_dict
from repro.experiments.registry import get_experiment
from repro.service import (
    ExperimentService,
    load_bundle,
    spec_from_dict,
)

SPEC = {"name": "svc", "experiments": ["fig7"], "runs": 2}


def write_spec(tmp_path, payload=SPEC, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestBitIdentity:
    def test_service_report_matches_direct_run(self, tmp_path):
        service = ExperimentService(tmp_path / "svc")
        job = service.submit(spec_from_dict(SPEC))
        counts = service.serve()
        assert counts["done"] == 1

        svc_report = load_report(
            service.job_dir(job.job_id) / "reports" / "fig7-s2010" / "fig7.json"
        )
        scale = dataclasses.replace(QUICK, runs=2)
        direct = get_experiment("fig7").run(scale, master_seed=2010)
        assert report_to_dict(svc_report) == report_to_dict(direct)

    def test_job_dir_layout_and_manifest(self, tmp_path):
        service = ExperimentService(tmp_path / "svc")
        spec = spec_from_dict(SPEC)
        job = service.submit(spec)
        service.serve()

        job_dir = service.job_dir(job.job_id)
        assert (job_dir / "spec.json").exists()
        assert list((job_dir / "checkpoints").glob("*.jsonl"))
        manifest = json.loads((job_dir / "manifest.json").read_text())
        block = manifest["service"]
        assert block["job_id"] == job.job_id
        assert block["spec_fingerprint"] == spec.fingerprint()
        assert block["units"] == ["fig7-s2010"]


class TestCrashResume:
    def test_mid_sweep_crash_then_requeue_resumes(self, tmp_path, monkeypatch):
        service = ExperimentService(tmp_path / "svc")
        job = service.submit(spec_from_dict(SPEC))

        real_task = runner._routing_task
        completed = []

        def crash_after_first(task):
            if completed:
                raise RuntimeError("simulated worker crash")
            out = real_task(task)
            completed.append((task[0], task[5]))
            return out

        monkeypatch.setattr(runner, "_routing_task", crash_after_first)
        counts = service.serve()
        assert counts["failed"] == 1
        assert "simulated worker crash" in service.queue.get(job.job_id).error
        assert len(completed) == 1  # one task finished and was journalled

        recomputed = []

        def counting_task(task):
            recomputed.append((task[0], task[5]))
            return real_task(task)

        monkeypatch.setattr(runner, "_routing_task", counting_task)
        service.queue.requeue(job.job_id)
        counts = service.serve()
        assert counts["done"] == 1
        # resume, not restart: the journalled task was never re-simulated.
        assert completed[0] not in recomputed
        assert recomputed  # and the rest of the sweep did run

    def test_dead_server_recovery_requeues_running_job(self, tmp_path):
        first = ExperimentService(tmp_path / "svc")
        job = first.submit(spec_from_dict(SPEC))
        first.queue.transition(job.job_id, "running")
        # the process dies here; a fresh server recovers the orphan.
        second = ExperimentService(tmp_path / "svc")
        assert second.queue.get(job.job_id).state == "queued"
        assert second.serve()["done"] == 1


class TestCancellation:
    def test_cancel_running_job_stops_at_task_boundary(self, tmp_path):
        service = ExperimentService(tmp_path / "svc")
        job = service.submit(spec_from_dict(SPEC))

        def cancel_after_first(label, scenario, done, total):
            if done >= 1:
                service.cancel(job.job_id)

        service.progress = cancel_after_first
        counts = service.serve()
        assert counts["cancelled"] == 1
        assert "cancelled" in service.queue.get(job.job_id).error
        # completed work stayed checkpointed ...
        checkpoints = list(
            (service.job_dir(job.job_id) / "checkpoints").glob("*.jsonl")
        )
        assert checkpoints
        # ... so a requeue finishes the job.
        service.progress = None
        service.queue.requeue(job.job_id)
        assert service.serve()["done"] == 1

    def test_two_workers_one_cancelled_other_completes(self, tmp_path):
        service = ExperimentService(tmp_path / "svc", workers=2)
        keep = service.submit(spec_from_dict(SPEC))
        drop = service.submit(
            spec_from_dict({**SPEC, "name": "svc-drop", "seeds": [7]})
        )
        service.cancel(drop.job_id)  # still queued: cancelled outright
        counts = service.serve()
        assert counts["done"] == 1
        assert counts["cancelled"] == 1
        assert service.queue.get(keep.job_id).state == "done"
        assert service.queue.get(drop.job_id).state == "cancelled"


class TestServiceCLI:
    def test_list_json_metadata(self, capsys):
        assert main(["list", "--json"]) == 0
        metadata = json.loads(capsys.readouterr().out)
        fig7 = next(entry for entry in metadata if entry["id"] == "fig7")
        assert fig7["scenario"] == "routing"
        assert fig7["tiers"] == ["quick", "paper"]
        assert {"id", "title", "scenario", "tiers"} <= set(fig7)

    def test_submit_serve_jobs_export_round_trip(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path)
        svc = str(tmp_path / "svc")

        assert main(["submit", str(spec_path), "--service-dir", svc]) == 0
        job_id = capsys.readouterr().out.strip()
        assert job_id.startswith("j0001-")

        assert main(["serve", "--service-dir", svc, "--quiet"]) == 0
        capsys.readouterr()

        assert main(["jobs", "--service-dir", svc, "--json"]) == 0
        jobs = json.loads(capsys.readouterr().out)
        assert jobs[0]["state"] == "done"

        bundle_path = tmp_path / "bundle.tar.gz"
        assert main(
            ["export", job_id, "--service-dir", svc, "--out", str(bundle_path)]
        ) == 0
        bundle = load_bundle(bundle_path)
        assert "fig7-s2010" in bundle["reports"]
        assert (
            bundle["manifest"]["service"]["spec_fingerprint"]
            == spec_from_dict(SPEC).fingerprint()
        )

    def test_calibrate_then_drift_gated_serve(self, tmp_path, capsys):
        pack_path = tmp_path / "pack.json"
        gated = {**SPEC, "name": "gated", "baseline_pack": str(pack_path)}
        spec_path = write_spec(tmp_path, gated)
        svc = str(tmp_path / "svc")

        assert main(
            ["calibrate", str(spec_path), "--out", str(pack_path), "--quiet"]
        ) == 0
        capsys.readouterr()

        # same seeds, same code: the drift check must pass.
        assert main(["submit", str(spec_path), "--service-dir", svc]) == 0
        capsys.readouterr()
        assert main(["serve", "--service-dir", svc, "--quiet"]) == 0
        capsys.readouterr()

        # poison the pack: the next identical job must fail the gate.
        pack = json.loads(pack_path.read_text())
        entry = pack["experiments"]["fig7-s2010"]["metrics"]
        entry["series.oldest-node.final"] = entry["series.oldest-node.final"] + 10.0
        pack_path.write_text(json.dumps(pack))

        assert main(["submit", str(spec_path), "--service-dir", svc]) == 0
        capsys.readouterr()
        assert main(["serve", "--service-dir", svc, "--quiet"]) == 1
        capsys.readouterr()
        assert main(["jobs", "--service-dir", svc, "--json"]) == 0
        jobs = json.loads(capsys.readouterr().out)
        drifted = jobs[-1]
        assert drifted["state"] == "failed"
        assert any("series.oldest-node.final" in v for v in drifted["drift"])

    def test_cancel_and_requeue_commands(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path)
        svc = str(tmp_path / "svc")
        assert main(["submit", str(spec_path), "--service-dir", svc]) == 0
        job_id = capsys.readouterr().out.strip()

        assert main(["cancel", job_id, "--service-dir", svc]) == 0
        assert "cancelled" in capsys.readouterr().out
        assert main(["requeue", job_id, "--service-dir", svc]) == 0
        capsys.readouterr()
        assert main(["serve", "--service-dir", svc, "--quiet"]) == 0

    def test_submit_rejects_invalid_spec(self, tmp_path, capsys):
        spec_path = write_spec(
            tmp_path, {"name": "bad", "experiments": ["nope99"]}
        )
        assert main(
            ["submit", str(spec_path), "--service-dir", str(tmp_path / "svc")]
        ) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestOutputsThroughService:
    def test_metrics_trace_and_svg_artifacts(self, tmp_path):
        spec = spec_from_dict(
            {
                **SPEC,
                "name": "arty",
                "outputs": {"metrics": True, "trace": True, "svg": True},
            }
        )
        service = ExperimentService(tmp_path / "svc")
        job = service.submit(spec)
        assert service.serve()["done"] == 1
        job_dir = service.job_dir(job.job_id)
        assert (job_dir / "metrics.json").exists()
        assert (job_dir / "trace.jsonl").exists()
        assert (job_dir / "reports" / "fig7-s2010" / "fig7.svg").exists()
