"""Shared fixtures: small deterministic networks and worlds."""

from __future__ import annotations

import os
import random

import pytest

from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.net.manual import fixed_topology

# Runtime cross-layer invariant checking is on by default under the test
# suite: every world built by any test validates its state after every
# step unless its config forces ``check_invariants=False``.
os.environ.setdefault("REPRO_CHECK_INVARIANTS", "1")


@pytest.fixture
def rng():
    """A seeded RNG for tests that need one."""
    return random.Random(1234)


@pytest.fixture
def line5():
    """A bidirectional 5-node line: 0 - 1 - 2 - 3 - 4."""
    edges = []
    for a, b in ((0, 1), (1, 2), (2, 3), (3, 4)):
        edges.extend([(a, b), (b, a)])
    return fixed_topology(5, edges)


@pytest.fixture
def ring6():
    """A bidirectional 6-node ring."""
    edges = []
    for a in range(6):
        b = (a + 1) % 6
        edges.extend([(a, b), (b, a)])
    return fixed_topology(6, edges)


@pytest.fixture
def directed_cycle4():
    """A one-way 4-node cycle 0 -> 1 -> 2 -> 3 -> 0."""
    return fixed_topology(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


@pytest.fixture
def star5():
    """Hub 0 connected bidirectionally to leaves 1..4."""
    edges = []
    for leaf in range(1, 5):
        edges.extend([(0, leaf), (leaf, 0)])
    return fixed_topology(5, edges)


@pytest.fixture
def gateway_line4():
    """Line 0 - 1 - 2 - 3 with node 0 a gateway."""
    edges = []
    for a, b in ((0, 1), (1, 2), (2, 3)):
        edges.extend([(a, b), (b, a)])
    return fixed_topology(4, edges, gateways=[0])


@pytest.fixture
def small_static_network():
    """A generated strongly connected ~30-node static network."""
    config = GeneratorConfig(
        node_count=30,
        target_edges=None,
        range_heterogeneity=0.3,
        require_strong_connectivity=True,
    )
    return NetworkGenerator(config, seed=99).generate_static()


@pytest.fixture
def small_manet():
    """A generated ~40-node MANET with 3 gateways, half mobile."""
    config = GeneratorConfig(
        node_count=40,
        target_edges=None,
        range_heterogeneity=0.25,
        require_strong_connectivity=False,
        gateway_count=3,
        mobile_fraction=0.5,
    )
    return NetworkGenerator(config, seed=77).generate_manet()
