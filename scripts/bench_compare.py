#!/usr/bin/env python
"""Performance-regression gate over substrate benchmark baselines.

Compares a freshly measured baseline (``scripts/bench_baseline.py``
output) against the checked-in reference ``BENCH_substrate.json`` and
fails (exit 1) when the hot paths regressed.

Two kinds of check, strongest first:

* **speedup floors** — the baseline file records machine-independent
  ratios between each incremental hot path and its rebuild-from-scratch
  twin measured in the same process (``speedups``).  These must clear a
  floor: the incremental topology engine and the delta-aware
  connectivity cache must actually be faster than the naive reference,
  on whatever machine CI happens to give us.
* **cross-file tolerance band** — per-workload mean times are compared
  against the reference after normalizing by a machine-speed proxy
  (``knowledge_merge``, a pure-Python workload untouched by engine
  switches).  Different machines, CPU governors and cache sizes move
  absolute numbers a lot, so the band is generous by default (+80%);
  it exists to catch order-of-magnitude accidents, not 10% noise.

Usage::

    PYTHONPATH=src python scripts/bench_compare.py candidate.json
    PYTHONPATH=src python scripts/bench_compare.py candidate.json \
        --reference BENCH_substrate.json --tolerance 0.8 \
        --min-speedup routing_world_step=1.3
"""

import argparse
import json
import pathlib
import sys

#: baseline-file schema this gate understands.
BENCH_SCHEMA = 4

#: workload used to normalize cross-machine speed differences: pure
#: Python, allocation-heavy, and untouched by the incremental engine.
PROXY_WORKLOAD = "knowledge_merge"

#: floors for the recorded incremental-vs-naive ratios, per bench
#: scale: the incremental engines win less on the 60-node smoke network
#: than on the 250-node full one.  Deliberately below the measured
#: values (full scale: ~2.6x world step, ~3.9x topology advance, ~1.3x
#: isolated batch engine, ~30x sharded arena at 10k nodes; smoke:
#: ~1.8x world step, ~10x sharded arena at 5k nodes) so CI noise does
#: not flake the gate, but high enough that a broken or accidentally
#: disabled fast path fails loudly.  The 4.0x sharded floor is the
#: scaling target the tile decomposition must clear at 10k nodes.
DEFAULT_MIN_SPEEDUPS = {
    "full": {
        "routing_world_step": 2.0,
        "topology_advance": 3.0,
        "routing_world_step_batch": 1.15,
        "sharded_world_step": 4.0,
    },
    "smoke": {
        "routing_world_step": 1.4,
        "topology_advance": 3.0,
        "routing_world_step_batch": 1.15,
        "sharded_world_step": 4.0,
    },
}


def load(path):
    payload = json.loads(pathlib.Path(path).read_text())
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise SystemExit(
            f"{path}: unsupported baseline schema {schema!r}, expected {BENCH_SCHEMA}"
        )
    return payload


def check_speedups(candidate, floors, failures):
    recorded = candidate.get("speedups", {})
    for name, floor in sorted(floors.items()):
        ratio = recorded.get(name)
        if ratio is None:
            failures.append(f"speedup for {name!r} missing from candidate")
        elif ratio < floor:
            failures.append(
                f"{name}: incremental speedup {ratio:.2f}x below floor {floor:.2f}x"
            )
        else:
            print(f"  ok  {name:<24} speedup {ratio:5.2f}x (floor {floor:.2f}x)")


def check_tolerance(candidate, reference, tolerance, failures):
    cand = candidate["results"]
    ref = reference["results"]
    if PROXY_WORKLOAD not in cand or PROXY_WORKLOAD not in ref:
        failures.append(f"machine-speed proxy {PROXY_WORKLOAD!r} missing")
        return
    # >1 means this machine is slower than the reference machine.
    machine = cand[PROXY_WORKLOAD]["mean_s"] / ref[PROXY_WORKLOAD]["mean_s"]
    print(f"  machine-speed factor vs reference: {machine:.2f}x")
    for name in sorted(set(cand) & set(ref)):
        if name == PROXY_WORKLOAD:
            continue
        normalized = cand[name]["mean_s"] / machine
        allowed = ref[name]["mean_s"] * (1.0 + tolerance)
        if normalized > allowed:
            failures.append(
                f"{name}: normalized mean {normalized * 1e6:.1f} us exceeds "
                f"reference {ref[name]['mean_s'] * 1e6:.1f} us "
                f"+{tolerance * 100:.0f}% band"
            )
        else:
            print(
                f"  ok  {name:<24} normalized {normalized * 1e6:9.1f} us"
                f"  (band {allowed * 1e6:9.1f} us)"
            )


def parse_min_speedup(spec):
    try:
        name, _, value = spec.partition("=")
        return name, float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected NAME=RATIO, got {spec!r}"
        ) from None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidate", help="freshly measured baseline JSON")
    parser.add_argument(
        "--reference",
        default="BENCH_substrate.json",
        help="checked-in reference baseline (default BENCH_substrate.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.8,
        help="cross-file slack as a fraction of the reference mean "
        "(default 0.8 = +80%%, generous on purpose)",
    )
    parser.add_argument(
        "--min-speedup",
        action="append",
        type=parse_min_speedup,
        metavar="NAME=RATIO",
        default=None,
        help="override a speedup floor (repeatable); "
        f"defaults: {DEFAULT_MIN_SPEEDUPS}",
    )
    parser.add_argument(
        "--skip-tolerance",
        action="store_true",
        help="check only the machine-independent speedup floors",
    )
    args = parser.parse_args(argv)

    candidate = load(args.candidate)
    scale = candidate.get("manifest", {}).get("scale", "bench-full")
    scale = scale.removeprefix("bench-")
    floors = dict(DEFAULT_MIN_SPEEDUPS.get(scale, DEFAULT_MIN_SPEEDUPS["full"]))
    if args.min_speedup:
        floors.update(args.min_speedup)

    failures = []
    print("speedup floors:")
    check_speedups(candidate, floors, failures)
    if not args.skip_tolerance:
        reference = load(args.reference)
        print("cross-file tolerance band:")
        check_tolerance(candidate, reference, args.tolerance, failures)

    if failures:
        print("PERF GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
