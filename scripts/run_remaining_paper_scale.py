#!/usr/bin/env python
"""Paper-scale run of the remaining experiments at a reduced run count.

The full 40-run evaluation of every figure takes hours on one core; the
routing sweeps dominate.  This script runs the named experiments with
16 seeded repetitions instead of 40 — the visiting/stigmergy effect
sizes measured during calibration (|Δ| ≈ 0.03–0.10 connectivity against
a per-run std of ~0.05) resolve comfortably at n=16 — and archives the
reports exactly like the CLI would.  EXPERIMENTS.md labels these
entries with their run count.

Usage: python scripts/run_remaining_paper_scale.py [ids...]
"""

import sys
import time
from dataclasses import replace

from repro.experiments import PAPER, get_experiment
from repro.experiments.persistence import save_report, save_svg

DEFAULT_IDS = [
    "fig10",
    "fig11",
    "ext1",
    "ext2",
    "abl1",
    "abl2",
    "abl3",
    "abl4",
    "abl5",
    "abl6",
]


def main() -> int:
    ids = sys.argv[1:] or DEFAULT_IDS
    scale = replace(PAPER, runs=16, name="paper-16")
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        started = time.perf_counter()
        report = experiment.run(scale)
        elapsed = time.perf_counter() - started
        print(report.render(plots=False))
        print(f"(scale={scale.name}, runs={scale.runs}, wall time {elapsed:.1f}s)")
        print(f"wrote {save_report(report, 'results/json')}")
        svg = save_svg(report, "results/svg")
        if svg is not None:
            print(f"wrote {svg}")
        print(flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
