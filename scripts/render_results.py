#!/usr/bin/env python
"""Re-render archived experiment reports without re-running anything.

Usage::

    python scripts/render_results.py results/json            # all reports
    python scripts/render_results.py results/json/fig6.json  # one report
    python scripts/render_results.py results/json --no-plot  # tables only

Reports are the JSON files written by ``repro run … --json-dir`` (or
:func:`repro.experiments.persistence.save_report`).
"""

import pathlib
import sys

from repro.experiments.persistence import load_report


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    plots = "--no-plot" not in sys.argv
    if not args:
        print(__doc__)
        return 2
    target = pathlib.Path(args[0])
    paths = sorted(target.glob("*.json")) if target.is_dir() else [target]
    if not paths:
        print(f"no reports found under {target}", file=sys.stderr)
        return 1
    for path in paths:
        report = load_report(path)
        print(report.render(plots=plots))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
