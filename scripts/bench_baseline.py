#!/usr/bin/env python
"""Substrate micro-benchmark baseline writer.

Runs the same hot-path workloads as ``benchmarks/bench_substrate_ops.py``
— topology recomputation under mobility, the connectivity walk,
knowledge merging, footprint filtering, the routing world step, and
route-table churn — without needing ``pytest-benchmark``, and writes the
timings plus a run manifest to a JSON baseline file.

The checked-in ``BENCH_substrate.json`` is the reference point: re-run
this script after a performance-sensitive change and compare
``ops_per_s`` per workload.  Absolute numbers move between machines;
the *ratios* between workloads and between before/after runs on the
same machine are what matter.

Usage::

    PYTHONPATH=src python scripts/bench_baseline.py                     # full
    PYTHONPATH=src python scripts/bench_baseline.py --scale smoke       # CI
    PYTHONPATH=src python scripts/bench_baseline.py --out BENCH_substrate.json
"""

import argparse
import json
import pathlib
import random
import sys
from dataclasses import replace
from time import perf_counter

from repro.core.knowledge import TopologyKnowledge
from repro.core.stigmergy import StigmergyField
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.obs.manifest import build_manifest
from repro.routing.connectivity import connectivity_fraction
from repro.routing.table import RouteEntry, TableBank
from repro.routing.world import RoutingWorld, RoutingWorldConfig
from repro.shard.world import ShardedRoutingWorld

#: bumped when the baseline-file layout changes incompatibly.
#: 2: added the naive twin workloads and the ``speedups`` section.
#: 3: the naive world twin pins ``batch_agents=False`` (a true
#:    per-object oracle), the ``routing_world_step_batch`` pair
#:    isolates the SoA agent engine at an agent-dominated population,
#:    and every workload gets an untimed warmup round.
#: 4: the sharded-arena pair: ``sharded_world_step`` drives the
#:    tile-sharded world at 10k nodes (5k on smoke) against the serial
#:    world on the same network; these run at their own per-workload
#:    iteration counts (``ITERATION_OVERRIDES``) because a 10k-node
#:    serial step is seconds, not microseconds.
BENCH_SCHEMA = 4

#: the same 250-node MANET the pytest benchmarks use.
MANET_250 = GeneratorConfig(
    node_count=250,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=12,
    mobile_fraction=0.5,
)

#: a small MANET so the CI smoke run finishes in seconds.
MANET_60 = GeneratorConfig(
    node_count=60,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=4,
    mobile_fraction=0.5,
)

#: the scaling workload: big enough that per-step link maintenance
#: dominates and the tile decomposition's O(tile + halo) recompute pays.
MANET_10K = GeneratorConfig(
    node_count=10_000,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=64,
    mobile_fraction=0.5,
)

#: the smoke-scale twin of MANET_10K.  5k nodes is the smallest network
#: where link maintenance clearly dominates the serial step (the tile
#: win is ~1.5x at 2k but ~10x at 5k), so the smoke gate still proves
#: the decomposition works rather than measuring noise.
MANET_5K = GeneratorConfig(
    node_count=5_000,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=32,
    mobile_fraction=0.5,
)

#: (iterations per round, rounds) per scale.
SCALES = {
    "full": (200, 5),
    "smoke": (20, 3),
}

#: per-workload (iterations, rounds) overrides: the 10k-node world
#: steps run in seconds each, so they get a handful of iterations
#: instead of the scale default.
ITERATION_OVERRIDES = {
    "full": {
        "sharded_world_step": (12, 3),
        "sharded_world_step_naive": (4, 3),
    },
    "smoke": {
        "sharded_world_step": (8, 2),
        "sharded_world_step_naive": (4, 2),
    },
}


def _time_workload(func, iterations, rounds):
    """Best/mean/median per-call seconds over ``rounds`` timed rounds.

    One untimed warmup round runs first so stateful workloads (the
    world steppers ramp up routes and connectivity over their first few
    hundred steps) are measured in steady state, not mid-ramp.
    """
    for __ in range(iterations):
        func()
    per_call = []
    for __ in range(rounds):
        started = perf_counter()
        for __ in range(iterations):
            func()
        per_call.append((perf_counter() - started) / iterations)
    per_call.sort()
    mean = sum(per_call) / len(per_call)
    return {
        "iterations": iterations,
        "rounds": rounds,
        "min_s": per_call[0],
        "p50_s": per_call[len(per_call) // 2],
        "mean_s": mean,
        "ops_per_s": (1.0 / mean) if mean > 0 else 0.0,
    }


def _workloads(scale):
    """Yield ``(name, callable)`` pairs; construction cost is excluded."""
    manet = MANET_250 if scale == "full" else MANET_60
    world_pop = 100 if scale == "full" else 30
    merge_nodes = 300 if scale == "full" else 80

    topology = NetworkGenerator(manet, 1).generate_manet()

    def topology_advance():
        topology.advance()
        return topology.edge_count

    # The same network driven through the naive rebuild-from-scratch
    # path — the denominator of the incremental engine's speedup.
    naive_topology = NetworkGenerator(manet, 1).generate_manet()
    naive_topology.set_incremental(False)

    def topology_advance_naive():
        naive_topology.advance()
        return naive_topology.edge_count

    warm = RoutingWorld(
        NetworkGenerator(manet, 2).generate_manet(),
        RoutingWorldConfig(population=world_pop, total_steps=40, converged_after=20),
        seed=3,
    )
    warm.run()

    def connectivity_metric():
        return connectivity_fraction(warm.topology, warm.tables)

    rng = random.Random(4)
    source = TopologyKnowledge()
    for node in range(merge_nodes):
        source.observe_node(
            node, [rng.randrange(merge_nodes) for __ in range(7)], node
        )
    edges = source.shareable_edges()
    visits = source.shareable_visits()

    def knowledge_merge():
        sink = TopologyKnowledge()
        sink.absorb(edges, visits)
        return sink.known_edge_count

    field = StigmergyField(capacity=16, freshness=10)
    stamp_rng = random.Random(5)
    for agent in range(40):
        field.stamp(0, agent, stamp_rng.randrange(10), stamp_rng.randrange(10))
    candidates = list(range(10))

    def footprint_filter():
        return field.filter_candidates(0, candidates, 10)

    stepper = RoutingWorld(
        NetworkGenerator(manet, 6).generate_manet(),
        RoutingWorldConfig(
            population=world_pop, total_steps=10_000_000, converged_after=0
        ),
        seed=7,
    )

    def world_step():
        stepper.engine.step()
        return stepper.result.connectivity[-1]

    # The reference configuration: rebuild-from-scratch topology, a full
    # re-walk of the connectivity metric every step, and per-object
    # agent stepping (the batch engine's oracle twin).
    naive_stepper = RoutingWorld(
        NetworkGenerator(manet, 6).generate_manet(),
        RoutingWorldConfig(
            population=world_pop,
            total_steps=10_000_000,
            converged_after=0,
            connectivity_cache=False,
            batch_agents=False,
        ),
        seed=7,
    )
    naive_stepper.topology.set_incremental(False)

    def world_step_naive():
        naive_stepper.engine.step()
        return naive_stepper.result.connectivity[-1]

    # The SoA batch engine isolated: both twins keep the incremental
    # topology and delta-aware connectivity, only the agent engine
    # differs, and the population is large enough that agent stepping
    # dominates the tick.
    batch_pop = 500 if scale == "full" else 100
    batch_steppers = []
    for batch in (True, False):
        world = RoutingWorld(
            NetworkGenerator(manet, 6).generate_manet(),
            RoutingWorldConfig(
                population=batch_pop,
                total_steps=10_000_000,
                converged_after=0,
                batch_agents=batch,
            ),
            seed=7,
        )
        batch_steppers.append(world)
    batch_stepper, object_stepper = batch_steppers

    def world_step_batch():
        batch_stepper.engine.step()
        return batch_stepper.result.connectivity[-1]

    def world_step_batch_naive():
        object_stepper.engine.step()
        return object_stepper.result.connectivity[-1]

    # The sharded arena at scale: each spatial tile recomputes adjacency
    # over its own halo only, so per-step link work is O(tile + halo)
    # per tile instead of O(arena).  The naive twin is the serial world
    # on the same network with the per-object agent stepper.
    big = MANET_10K if scale == "full" else MANET_5K
    shard_config = RoutingWorldConfig(
        agent_kind="oldest-node",
        population=200 if scale == "full" else 60,
        visiting=True,
        route_ttl=150,
        total_steps=10_000_000,
        converged_after=0,
        check_invariants=False,
        shards=8,
    )
    sharded_stepper = ShardedRoutingWorld(big, shard_config, 9, 10)

    def sharded_step():
        sharded_stepper.engine.step()
        return sharded_stepper.result.connectivity[-1]

    serial_big_stepper = RoutingWorld(
        NetworkGenerator(big, 9).generate_manet(),
        replace(shard_config, shards=None, batch_agents=False),
        seed=10,
    )

    def sharded_step_naive():
        serial_big_stepper.engine.step()
        return serial_big_stepper.result.connectivity[-1]

    bank = TableBank(250, ttl=150)
    churn_rng = random.Random(8)

    def table_churn():
        now = churn_rng.randrange(1000)
        node = churn_rng.randrange(250)
        bank.table(node).install(
            RouteEntry(
                gateway=churn_rng.randrange(12),
                next_hop=churn_rng.randrange(250),
                hops=churn_rng.randrange(1, 10),
                installed_at=now,
                gateway_seen_at=now,
            )
        )
        return bank.table(node).expire(now)

    return [
        ("topology_advance", topology_advance),
        ("topology_advance_naive", topology_advance_naive),
        ("connectivity_metric", connectivity_metric),
        ("knowledge_merge", knowledge_merge),
        ("footprint_filter", footprint_filter),
        ("routing_world_step", world_step),
        ("routing_world_step_naive", world_step_naive),
        ("routing_world_step_batch", world_step_batch),
        ("routing_world_step_batch_naive", world_step_batch_naive),
        ("sharded_world_step", sharded_step),
        ("sharded_world_step_naive", sharded_step_naive),
        ("table_install_expire", table_churn),
    ]


#: incremental workload -> its rebuild-from-scratch twin.  The recorded
#: ``speedups`` ratios are machine-independent (both sides run on the
#: same box in the same process), which is what the CI perf gate checks.
SPEEDUP_PAIRS = {
    "topology_advance": "topology_advance_naive",
    "routing_world_step": "routing_world_step_naive",
    "routing_world_step_batch": "routing_world_step_batch_naive",
    "sharded_world_step": "sharded_world_step_naive",
}


def _speedups(results):
    speedups = {}
    for fast, slow in SPEEDUP_PAIRS.items():
        if fast in results and slow in results:
            mean = results[fast]["mean_s"]
            speedups[fast] = results[slow]["mean_s"] / mean if mean > 0 else 0.0
    return speedups


def run_benchmarks(scale):
    """Run every workload at ``scale``; return the JSON-safe baseline."""
    iterations, rounds = SCALES[scale]
    overrides = ITERATION_OVERRIDES[scale]
    results = {}
    for name, func in _workloads(scale):
        print(f"  {name} ...", file=sys.stderr, flush=True)
        its, rds = overrides.get(name, (iterations, rounds))
        results[name] = _time_workload(func, its, rds)
    return {
        "schema": BENCH_SCHEMA,
        "manifest": build_manifest(
            master_seed=0,
            scale=f"bench-{scale}",
            experiments=sorted(results),
            options={"iterations": iterations, "rounds": rounds},
        ),
        "results": results,
        "speedups": _speedups(results),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="full",
        help="workload size: 'full' for baselines, 'smoke' for CI (default full)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_substrate.json",
        help="where to write the baseline JSON (default BENCH_substrate.json)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmarks(args.scale)
    path = pathlib.Path(args.out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    width = max(len(name) for name in payload["results"])
    for name, stats in sorted(payload["results"].items()):
        print(
            f"{name:<{width}}  mean {stats['mean_s'] * 1e6:10.1f} us"
            f"  p50 {stats['p50_s'] * 1e6:10.1f} us"
            f"  {stats['ops_per_s']:12.0f} ops/s"
        )
    for name, ratio in sorted(payload["speedups"].items()):
        print(f"{name:<{width}}  {ratio:5.2f}x vs naive")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
